#include "swap/durability.h"

#include <algorithm>
#include <unordered_set>

#include "fleet/placement.h"

namespace obiswap::swap {

DurabilityMonitor::DurabilityMonitor(SwappingManager& manager,
                                     net::Discovery& discovery, DeviceId self,
                                     context::EventBus& bus,
                                     context::PropertyRegistry* props,
                                     Options options)
    : manager_(manager),
      discovery_(discovery),
      self_(self),
      bus_(bus),
      props_(props),
      options_(options),
      repair_pacer_(options.repair_pacer) {}

DurabilityMonitor::~DurabilityMonitor() {
  for (uint64_t token : bus_tokens_) bus_.Unsubscribe(token);
}

void DurabilityMonitor::AttachFleet(fleet::PlacementDirectory* directory) {
  directory_ = directory;
  if (incremental_) return;  // re-attach only swaps the directory pointer
  incremental_ = true;
  rebuild_pending_ = true;
  // Replica state changes flow through the bus; the monitor only re-reads
  // the clusters those events name. A handler never touches the registry
  // directly — Publish is synchronous and may run mid-swap, so it just
  // queues the id for the next poll.
  auto mark_cluster = [this](const context::Event& event) {
    int64_t id = event.GetIntOr("swap_cluster", -1);
    if (id >= 0)
      dirty_clusters_.insert(SwapClusterId(static_cast<uint32_t>(id)));
  };
  for (const char* type :
       {context::kEventClusterSwappedOut, context::kEventClusterSwappedIn,
        context::kEventClusterDropped, context::kEventReReplicated,
        context::kEventReplicaLost}) {
    bus_tokens_.push_back(bus_.Subscribe(type, mark_cluster));
  }
  bus_tokens_.push_back(bus_.Subscribe(
      context::kEventBreakerTransition, [this](const context::Event& event) {
        int64_t device = event.GetIntOr("device", -1);
        if (device >= 0)
          dirty_stores_.insert(DeviceId(static_cast<uint32_t>(device)));
      }));
}

size_t DurabilityMonitor::ReplicaRecords(const SwapClusterInfo* info) {
  if (info == nullptr) return 0;
  const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
  return active == nullptr ? 0 : active->size();
}

void DurabilityMonitor::RefreshCluster(SwapClusterId id) {
  const SwapClusterInfo* info = manager_.registry().Find(id);
  if (info == nullptr) {
    EvictClusterFromIndex(id);
    return;
  }
  const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
  std::vector<DeviceId> devices;
  if (active != nullptr) {
    devices.reserve(active->size());
    for (const ReplicaLocation& replica : *active) {
      if (std::find(devices.begin(), devices.end(), replica.device) ==
          devices.end())
        devices.push_back(replica.device);
    }
  }

  auto old_it = cluster_devices_.find(id);
  if (old_it != cluster_devices_.end()) {
    for (DeviceId device : old_it->second) {
      if (std::find(devices.begin(), devices.end(), device) != devices.end())
        continue;
      auto bucket = index_.find(device);
      if (bucket == index_.end()) continue;
      bucket->second.erase(id);
      if (bucket->second.empty()) index_.erase(bucket);
    }
  }
  for (DeviceId device : devices) index_[device].insert(id);

  const size_t records = active == nullptr ? 0 : active->size();
  auto rec_it = cluster_records_.find(id);
  total_records_ -= rec_it == cluster_records_.end() ? 0 : rec_it->second;
  total_records_ += records;
  if (devices.empty())
    cluster_devices_.erase(id);
  else
    cluster_devices_[id] = std::move(devices);
  if (records == 0)
    cluster_records_.erase(id);
  else
    cluster_records_[id] = records;

  size_t want = manager_.options().replication_factor;
  if (want == 0) want = 1;
  if (active != nullptr && active->size() < want)
    under_replicated_.insert(id);
  else
    under_replicated_.erase(id);
}

void DurabilityMonitor::EvictClusterFromIndex(SwapClusterId id) {
  auto old_it = cluster_devices_.find(id);
  if (old_it != cluster_devices_.end()) {
    for (DeviceId device : old_it->second) {
      auto bucket = index_.find(device);
      if (bucket == index_.end()) continue;
      bucket->second.erase(id);
      if (bucket->second.empty()) index_.erase(bucket);
    }
    cluster_devices_.erase(old_it);
  }
  auto rec_it = cluster_records_.find(id);
  if (rec_it != cluster_records_.end()) {
    total_records_ -= rec_it->second;
    cluster_records_.erase(rec_it);
  }
  under_replicated_.erase(id);
}

void DurabilityMonitor::RebuildIndex() {
  index_.clear();
  cluster_devices_.clear();
  cluster_records_.clear();
  total_records_ = 0;
  under_replicated_.clear();
  for (SwapClusterId id : manager_.registry().Ids()) RefreshCluster(id);
  // A rebuild is one honest full scan and is metered as such.
  stats_.scan_replicas += total_records_;
}

void DurabilityMonitor::DrainDirtyClusters() {
  size_t want = manager_.options().replication_factor;
  if (want == 0) want = 1;
  // Events only name clusters; a recovery replaces the whole registry and
  // a replication-factor change moves the under-replication threshold for
  // every cluster at once. Both force a rebuild.
  if (want != last_want_ || manager_.stats().recoveries != last_recoveries_)
    rebuild_pending_ = true;
  last_want_ = want;
  last_recoveries_ = manager_.stats().recoveries;
  if (rebuild_pending_) {
    rebuild_pending_ = false;
    dirty_clusters_.clear();
    RebuildIndex();
    return;
  }
  std::set<SwapClusterId> dirty;
  dirty.swap(dirty_clusters_);
  for (SwapClusterId id : dirty) {
    const SwapClusterInfo* info = manager_.registry().Find(id);
    stats_.scan_replicas += ReplicaRecords(info);
    RefreshCluster(id);
  }
}

void DurabilityMonitor::SyncDirectory(const std::vector<DeviceId>& announced) {
  if (directory_ == nullptr) return;
  // Announced-but-unknown stores join, weighted by advertised capacity
  // (MiB granularity, floored at 1) so a double-size store wins
  // proportionally more keys. Existing members keep their weight — a
  // policy override survives the sync.
  for (DeviceId device : announced) {
    if (device == self_ || directory_->Contains(device)) continue;
    double weight = 1.0;
    net::StoreNode* node = discovery_.NodeFor(device);
    if (node != nullptr) {
      weight = std::max(
          1.0, static_cast<double>(node->capacity_bytes()) / (1 << 20));
    }
    directory_->AddStore(device, weight);
  }
  std::vector<DeviceId> members = directory_->Stores();
  for (DeviceId device : members) {
    if (!std::binary_search(announced.begin(), announced.end(), device))
      directory_->RemoveStore(device);
  }
  if (health_ != nullptr) {
    for (DeviceId device : directory_->Stores())
      directory_->SetHealthy(device, health_->IsHealthy(device));
  }
}

void DurabilityMonitor::Poll() {
  // A crashed manager must not be driven by maintenance: every repair
  // action would hit the crash gate anyway, and the poll's own bookkeeping
  // would drift from the state recovery is about to rebuild.
  if (manager_.crashed()) return;
  if (!manager_.CheckFaultPoint("durability.poll").ok()) return;
  telemetry::ScopedSpan span(
      &manager_.telemetry(), "durability_poll", "durability",
      telemetry::Hist(&manager_.telemetry(), "durability_poll_us"));
  ++stats_.polls;

  std::vector<DeviceId> announced = discovery_.AnnouncedDevices();

  if (FleetActive()) {
    // Pure bookkeeping — no RPCs, no clock: replaying the event-fed queues
    // up front means the departure/sweep passes below see exactly the
    // registry view a legacy full scan would.
    DrainDirtyClusters();
    std::set<DeviceId> flipped;
    flipped.swap(dirty_stores_);
    for (DeviceId device : flipped) {
      ++stats_.dirty_stores;
      auto bucket = index_.find(device);
      if (bucket == index_.end()) continue;
      std::vector<SwapClusterId> ids(bucket->second.begin(),
                                     bucket->second.end());
      for (SwapClusterId id : ids) {
        stats_.scan_replicas += ReplicaRecords(manager_.registry().Find(id));
        RefreshCluster(id);
      }
    }
    stats_.full_scan_replicas += total_records_;
  } else {
    // What one full pass over the registry would examine right now — the
    // denominator of the incremental mode's savings claim.
    uint64_t total = 0;
    for (SwapClusterId id : manager_.registry().Ids())
      total += ReplicaRecords(manager_.registry().Find(id));
    stats_.full_scan_replicas += total;
  }

  // A withdrawn announcement is an explicit departure.
  for (DeviceId device : last_announced_) {
    if (!std::binary_search(announced.begin(), announced.end(), device))
      HandleDeparture(device);
  }

  // Announced but silent: after miss_threshold consecutive unreachable
  // polls the store is presumed gone (fires once per silence streak — the
  // counter keeps climbing past the threshold without re-firing, and
  // resets the moment the store is heard from again).
  for (DeviceId device : announced) {
    if (device == self_) continue;
    if (discovery_.IsNearby(self_, device)) {
      misses_.erase(device);
      continue;
    }
    int count = ++misses_[device];
    if (count == options_.miss_threshold) HandleDeparture(device);
  }
  for (auto it = misses_.begin(); it != misses_.end();) {
    if (std::binary_search(announced.begin(), announced.end(), it->first))
      ++it;
    else
      it = misses_.erase(it);
  }

  if (FleetActive()) SyncDirectory(announced);

  // Degraded-mode gate: count *healthy* stores — announced, reachable and
  // (with a tracker attached) breaker-closed. Fewer healthy stores than
  // the replication factor means full-K placement can only thrash the sick
  // neighborhood: enter brownout (reduced effective K, sweep deferred) and
  // leave it — repaying the queued re-replication debt — on recovery.
  // Only active once a tracker is attached — an unwired monitor keeps the
  // exact pre-degraded-mode behavior.
  if (health_ != nullptr) {
    size_t want = manager_.options().replication_factor;
    if (want == 0) want = 1;
    size_t healthy = 0;
    for (DeviceId device : announced) {
      if (device == self_) continue;
      if (discovery_.IsNearby(self_, device) && health_->IsHealthy(device))
        ++healthy;
    }
    if (healthy < want)
      manager_.EnterBrownout("healthy stores below replication factor");
    else if (manager_.brownout())
      manager_.ExitBrownout();
    if (props_ != nullptr) {
      props_->SetInt("swap.healthy_stores", static_cast<int64_t>(healthy));
      props_->SetInt("swap.open_breakers",
                     static_cast<int64_t>(health_->open_count()));
      props_->SetInt("swap.brownout", manager_.brownout() ? 1 : 0);
    }
  }

  // Clean images whose members all died back garbage: release them before
  // the sweep so the re-replication budget is not spent on dead payloads.
  const size_t reaped = manager_.ReapDeadCleanImages();
  stats_.clean_images_reaped += reaped;
  if (FleetActive() && reaped > 0) {
    // A reaped image leaves no bus trace; the affected clusters had empty
    // active lists (that is what made them reapable), so they are all
    // sitting in the under-replicated set — re-check just those.
    std::vector<SwapClusterId> suspects(under_replicated_.begin(),
                                        under_replicated_.end());
    for (SwapClusterId id : suspects) {
      const SwapClusterInfo* info = manager_.registry().Find(id);
      if (info == nullptr || info->ActiveReplicas() == nullptr)
        RefreshCluster(id);
    }
  }

  if (manager_.brownout()) {
    // Re-replication debt is deferred, not forgiven: placing extra copies
    // on a neighborhood already below K would compete with demand traffic
    // for the surviving stores. The next healthy poll repays it.
    ++stats_.sweeps_deferred;
  } else {
    ReReplicationSweep();
  }

  stats_.drops_drained += manager_.FlushPendingDrops();

  if (props_ != nullptr) {
    int64_t under = 0;
    if (FleetActive()) {
      under = static_cast<int64_t>(under_replicated_.size());
    } else {
      size_t want = manager_.options().replication_factor;
      if (want == 0) want = 1;
      for (SwapClusterId id : manager_.registry().Ids()) {
        const SwapClusterInfo* info = manager_.registry().Find(id);
        if (info == nullptr) continue;
        const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
        if (active != nullptr && active->size() < want) ++under;
      }
    }
    props_->SetInt("swap.store_churn",
                   static_cast<int64_t>(stats_.stores_departed));
    props_->SetInt("swap.under_replicated", under);
    props_->SetInt("swap.pending_drops",
                   static_cast<int64_t>(manager_.pending_drop_count()));
    props_->SetInt("durability.scan_replicas",
                   static_cast<int64_t>(stats_.scan_replicas));
    props_->SetInt("durability.dirty_stores",
                   static_cast<int64_t>(stats_.dirty_stores));
    if (FleetActive() && directory_ != nullptr) {
      props_->SetInt("fleet.view_epoch",
                     static_cast<int64_t>(directory_->view_epoch()));
      props_->SetInt("fleet.stores",
                     static_cast<int64_t>(directory_->size()));
    }
  }

  last_announced_ = std::move(announced);
}

void DurabilityMonitor::HandleDeparture(DeviceId device) {
  ++stats_.stores_departed;
  ++stats_.dirty_stores;
  // Refresh the churn gauge before publishing so policy rules triggered by
  // this very event ("store-departed" → raise K) see the current count.
  if (props_ != nullptr) {
    props_->SetInt("swap.store_churn",
                   static_cast<int64_t>(stats_.stores_departed));
  }
  bus_.Publish(context::Event(context::kEventStoreDeparted)
                   .Set("device", static_cast<int64_t>(device.value())));
  // Legacy mode asks every cluster; incremental mode asks only the ones
  // the reverse index maps to the departed store. Both visit in ascending
  // cluster order with the identical HasReplicaOn guard, so the repair
  // sequence — and every manager-side effect — is the same.
  const bool fleet = FleetActive();
  std::vector<SwapClusterId> candidates;
  if (fleet) {
    auto bucket = index_.find(device);
    if (bucket != index_.end())
      candidates.assign(bucket->second.begin(), bucket->second.end());
  } else {
    candidates = manager_.registry().Ids();
  }
  for (SwapClusterId id : candidates) {
    const SwapClusterInfo* info = manager_.registry().Find(id);
    stats_.scan_replicas += ReplicaRecords(info);
    // Both swapped payloads and retained clean images hold store replicas;
    // HasReplicaOn / ForgetReplica cover whichever list is active.
    if (info == nullptr || !info->HasReplicaOn(device)) {
      if (fleet) RefreshCluster(id);  // stale index entry: drop it now
      continue;
    }
    size_t forgotten = manager_.ForgetReplica(id, device);
    if (fleet) RefreshCluster(id);
    if (forgotten == 0) continue;
    stats_.replicas_lost += forgotten;
    info = manager_.registry().Find(id);
    const std::vector<ReplicaLocation>* active =
        info == nullptr ? nullptr : info->ActiveReplicas();
    bus_.Publish(context::Event(context::kEventReplicaLost)
                     .Set("swap_cluster", static_cast<int64_t>(id.value()))
                     .Set("device", static_cast<int64_t>(device.value()))
                     .Set("survivors",
                          static_cast<int64_t>(
                              active != nullptr ? active->size() : 0)));
  }
  // A departed store holds nothing; whatever the index still maps to it is
  // pure staleness. Drop the bucket wholesale — re-placements on a
  // returning store re-index through the swap-out events.
  if (fleet) {
    auto bucket = index_.find(device);
    if (bucket != index_.end()) {
      std::vector<SwapClusterId> leftover(bucket->second.begin(),
                                          bucket->second.end());
      for (SwapClusterId id : leftover) RefreshCluster(id);
      index_.erase(device);
    }
  }
}

void DurabilityMonitor::ReReplicationSweep() {
  size_t want = manager_.options().replication_factor;
  if (want == 0) want = 1;
  // Legacy mode scans every cluster; incremental mode only the maintained
  // under-replicated set (ascending, like the full scan). The superset
  // invariant — every genuinely under-K cluster is in the set — holds
  // because every path that sheds a replica either refreshes inline
  // (departures, withdrawals) or queues a dirty-cluster event drained at
  // the top of the poll.
  const bool fleet = FleetActive();
  // Each sweep is one AIMD window for both background producers that run
  // under it: the repair pacer bounds how many clusters this poll repairs,
  // the manager's write-back pacer how many tier payloads ship to K.
  repair_pacer_.BeginWindow();
  manager_.write_back_pacer().BeginWindow();
  std::vector<SwapClusterId> candidates;
  if (fleet)
    candidates.assign(under_replicated_.begin(), under_replicated_.end());
  else
    candidates = manager_.registry().Ids();
  for (SwapClusterId id : candidates) {
    const SwapClusterInfo* info = manager_.registry().Find(id);
    stats_.scan_replicas += ReplicaRecords(info);
    if (info == nullptr) {
      if (fleet) EvictClusterFromIndex(id);
      continue;
    }
    const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
    if (active == nullptr || active->size() >= want) {
      if (fleet) RefreshCluster(id);  // stale set entry: reconcile it
      continue;
    }
    // Past this poll's repair cap: the cluster stays in the sweep set and
    // is retried next poll, with the cap re-opened by any successes.
    if (repair_pacer_.enabled() && !repair_pacer_.Admit()) {
      ++stats_.repairs_paced;
      continue;
    }
    uint64_t bytes_before = manager_.stats().bytes_re_replicated;
    // Feedback reads pushback-counter deltas — ReReplicate folds shed
    // placements into its fallback walk, so statuses alone cannot tell a
    // saturated store from a departed one.
    const net::StoreClient::Stats* client = manager_.StoreClientStats();
    const uint64_t pushbacks_before =
        client != nullptr ? client->pushbacks : 0;
    Result<size_t> added = manager_.ReReplicate(id);
    if (repair_pacer_.enabled()) {
      if (client != nullptr && client->pushbacks > pushbacks_before)
        repair_pacer_.OnPushback();
      else if (added.ok() && *added > 0)
        repair_pacer_.OnSuccess();
    }
    if (fleet) RefreshCluster(id);
    if (!added.ok() || *added == 0) continue;  // retried next poll
    ++stats_.clusters_re_replicated;
    stats_.replicas_re_replicated += *added;
    active = info->ActiveReplicas();
    bus_.Publish(
        context::Event(context::kEventReReplicated)
            .Set("swap_cluster", static_cast<int64_t>(id.value()))
            .Set("new_replicas", static_cast<int64_t>(*added))
            .Set("bytes", static_cast<int64_t>(
                              manager_.stats().bytes_re_replicated -
                              bytes_before))
            .Set("replicas",
                 static_cast<int64_t>(active != nullptr ? active->size()
                                                        : 0)));
  }
}

Result<size_t> DurabilityMonitor::OnStoreWithdrawing(DeviceId device) {
  std::vector<SwapClusterId> affected;
  if (FleetActive()) {
    ++stats_.dirty_stores;
    auto bucket = index_.find(device);
    if (bucket != index_.end())
      affected.assign(bucket->second.begin(), bucket->second.end());
  }
  OBISWAP_ASSIGN_OR_RETURN(size_t moved, manager_.EvacuateReplicas(device));
  stats_.evacuated_replicas += moved;
  for (SwapClusterId id : affected) {
    stats_.scan_replicas += ReplicaRecords(manager_.registry().Find(id));
    RefreshCluster(id);
  }
  return moved;
}

}  // namespace obiswap::swap
