#include "swap/durability.h"

#include <algorithm>
#include <unordered_set>

namespace obiswap::swap {

DurabilityMonitor::DurabilityMonitor(SwappingManager& manager,
                                     net::Discovery& discovery, DeviceId self,
                                     context::EventBus& bus,
                                     context::PropertyRegistry* props,
                                     Options options)
    : manager_(manager),
      discovery_(discovery),
      self_(self),
      bus_(bus),
      props_(props),
      options_(options) {}

void DurabilityMonitor::Poll() {
  // A crashed manager must not be driven by maintenance: every repair
  // action would hit the crash gate anyway, and the poll's own bookkeeping
  // would drift from the state recovery is about to rebuild.
  if (manager_.crashed()) return;
  if (!manager_.CheckFaultPoint("durability.poll").ok()) return;
  telemetry::ScopedSpan span(
      &manager_.telemetry(), "durability_poll", "durability",
      telemetry::Hist(&manager_.telemetry(), "durability_poll_us"));
  ++stats_.polls;

  std::vector<DeviceId> announced = discovery_.AnnouncedDevices();
  std::unordered_set<DeviceId> reachable;
  for (net::StoreNode* node : discovery_.NearbyStores(self_, 0))
    reachable.insert(node->device());

  // A withdrawn announcement is an explicit departure.
  for (DeviceId device : last_announced_) {
    if (!std::binary_search(announced.begin(), announced.end(), device))
      HandleDeparture(device);
  }

  // Announced but silent: after miss_threshold consecutive unreachable
  // polls the store is presumed gone (fires once per silence streak — the
  // counter keeps climbing past the threshold without re-firing, and
  // resets the moment the store is heard from again).
  for (DeviceId device : announced) {
    if (device == self_) continue;
    if (reachable.count(device) > 0) {
      misses_.erase(device);
      continue;
    }
    int count = ++misses_[device];
    if (count == options_.miss_threshold) HandleDeparture(device);
  }
  for (auto it = misses_.begin(); it != misses_.end();) {
    if (std::binary_search(announced.begin(), announced.end(), it->first))
      ++it;
    else
      it = misses_.erase(it);
  }

  // Degraded-mode gate: count *healthy* stores — announced, reachable and
  // (with a tracker attached) breaker-closed. Fewer healthy stores than
  // the replication factor means full-K placement can only thrash the sick
  // neighborhood: enter brownout (reduced effective K, sweep deferred) and
  // leave it — repaying the queued re-replication debt — on recovery.
  // Only active once a tracker is attached — an unwired monitor keeps the
  // exact pre-degraded-mode behavior.
  if (health_ != nullptr) {
    size_t want = manager_.options().replication_factor;
    if (want == 0) want = 1;
    size_t healthy = 0;
    for (DeviceId device : reachable) {
      if (device == self_) continue;
      if (health_->IsHealthy(device)) ++healthy;
    }
    if (healthy < want)
      manager_.EnterBrownout("healthy stores below replication factor");
    else if (manager_.brownout())
      manager_.ExitBrownout();
    if (props_ != nullptr) {
      props_->SetInt("swap.healthy_stores", static_cast<int64_t>(healthy));
      props_->SetInt("swap.open_breakers",
                     static_cast<int64_t>(health_->open_count()));
      props_->SetInt("swap.brownout", manager_.brownout() ? 1 : 0);
    }
  }

  // Clean images whose members all died back garbage: release them before
  // the sweep so the re-replication budget is not spent on dead payloads.
  stats_.clean_images_reaped += manager_.ReapDeadCleanImages();

  if (manager_.brownout()) {
    // Re-replication debt is deferred, not forgiven: placing extra copies
    // on a neighborhood already below K would compete with demand traffic
    // for the surviving stores. The next healthy poll repays it.
    ++stats_.sweeps_deferred;
  } else {
    ReReplicationSweep();
  }

  stats_.drops_drained += manager_.FlushPendingDrops();

  if (props_ != nullptr) {
    size_t want = manager_.options().replication_factor;
    if (want == 0) want = 1;
    int64_t under = 0;
    for (SwapClusterId id : manager_.registry().Ids()) {
      const SwapClusterInfo* info = manager_.registry().Find(id);
      if (info == nullptr) continue;
      const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
      if (active != nullptr && active->size() < want) ++under;
    }
    props_->SetInt("swap.store_churn",
                   static_cast<int64_t>(stats_.stores_departed));
    props_->SetInt("swap.under_replicated", under);
    props_->SetInt("swap.pending_drops",
                   static_cast<int64_t>(manager_.pending_drop_count()));
  }

  last_announced_ = std::move(announced);
}

void DurabilityMonitor::HandleDeparture(DeviceId device) {
  ++stats_.stores_departed;
  // Refresh the churn gauge before publishing so policy rules triggered by
  // this very event ("store-departed" → raise K) see the current count.
  if (props_ != nullptr) {
    props_->SetInt("swap.store_churn",
                   static_cast<int64_t>(stats_.stores_departed));
  }
  bus_.Publish(context::Event(context::kEventStoreDeparted)
                   .Set("device", static_cast<int64_t>(device.value())));
  for (SwapClusterId id : manager_.registry().Ids()) {
    const SwapClusterInfo* info = manager_.registry().Find(id);
    // Both swapped payloads and retained clean images hold store replicas;
    // HasReplicaOn / ForgetReplica cover whichever list is active.
    if (info == nullptr || !info->HasReplicaOn(device)) continue;
    size_t forgotten = manager_.ForgetReplica(id, device);
    if (forgotten == 0) continue;
    stats_.replicas_lost += forgotten;
    const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
    bus_.Publish(context::Event(context::kEventReplicaLost)
                     .Set("swap_cluster", static_cast<int64_t>(id.value()))
                     .Set("device", static_cast<int64_t>(device.value()))
                     .Set("survivors",
                          static_cast<int64_t>(
                              active != nullptr ? active->size() : 0)));
  }
}

void DurabilityMonitor::ReReplicationSweep() {
  size_t want = manager_.options().replication_factor;
  if (want == 0) want = 1;
  for (SwapClusterId id : manager_.registry().Ids()) {
    const SwapClusterInfo* info = manager_.registry().Find(id);
    if (info == nullptr) continue;
    const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
    if (active == nullptr || active->size() >= want) continue;
    uint64_t bytes_before = manager_.stats().bytes_re_replicated;
    Result<size_t> added = manager_.ReReplicate(id);
    if (!added.ok() || *added == 0) continue;  // retried next poll
    ++stats_.clusters_re_replicated;
    stats_.replicas_re_replicated += *added;
    active = info->ActiveReplicas();
    bus_.Publish(
        context::Event(context::kEventReReplicated)
            .Set("swap_cluster", static_cast<int64_t>(id.value()))
            .Set("new_replicas", static_cast<int64_t>(*added))
            .Set("bytes", static_cast<int64_t>(
                              manager_.stats().bytes_re_replicated -
                              bytes_before))
            .Set("replicas",
                 static_cast<int64_t>(active != nullptr ? active->size()
                                                        : 0)));
  }
}

Result<size_t> DurabilityMonitor::OnStoreWithdrawing(DeviceId device) {
  OBISWAP_ASSIGN_OR_RETURN(size_t moved, manager_.EvacuateReplicas(device));
  stats_.evacuated_replicas += moved;
  return moved;
}

}  // namespace obiswap::swap
