// The paper's micro-benchmark workload (§5): "a list of 10000 64-byte
// objects" with "simple (quasi-empty) methods", exercised by recursive and
// iterative traversals. Shared by the benchmark harnesses and examples.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/runtime.h"
#include "swap/manager.h"

namespace obiswap::workload {

/// Registers the benchmark's Node class:
///   next              — returns the next-element reference
///   get_value / set_value
///   step(depth)       — test A1: recursive traversal, counts depth
///   probe(remaining)  — test A2's inner recursion: returns a reference to
///                       the object up to `remaining` ahead (no mutation)
///   walk(depth)       — test A2's outer recursion: at every step triggers
///                       probe(10) and discards the returned reference
const runtime::ClassInfo* RegisterNodeClass(runtime::Runtime& rt);

/// Builds an n-node list (node i holds value i) and publishes the head as
/// global `global`. With a manager, consecutive `per_cluster` nodes share a
/// swap-cluster (the paper's 20/50/100 configurations); without one the
/// graph is raw (the "NO SWAP-CLUSTERS" lower bound). Returns created
/// swap-cluster ids (empty without a manager).
std::vector<SwapClusterId> BuildList(runtime::Runtime& rt,
                                     swap::SwappingManager* manager,
                                     const runtime::ClassInfo* node_cls,
                                     int n, int per_cluster,
                                     const std::string& global);

/// Runs `body` on a thread with a large stack. The paper's tests recurse
/// 10000 deep; each managed invocation frame costs native stack, so the
/// default 8 MiB is not enough.
void RunWithBigStack(const std::function<void()>& body,
                     size_t stack_bytes = 512 * 1024 * 1024);

/// Milliseconds of wall time spent in `body`.
double TimeMs(const std::function<void()>& body);

/// Median over `reps` timed runs (each preceded by `setup` if given).
double MedianTimeMs(int reps, const std::function<void()>& body);

}  // namespace obiswap::workload
