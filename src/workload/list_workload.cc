#include "workload/list_workload.h"

#include <pthread.h>

#include <algorithm>
#include <chrono>

namespace obiswap::workload {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using runtime::ValueKind;

const ClassInfo* RegisterNodeClass(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Node")
          .Field("next", ValueKind::kRef)
          .Field("value", ValueKind::kInt)
          .PayloadBytes(64)
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("get_value",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("set_value",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(r.SetFieldAt(self, 1, args[0]));
                    return Value::Nil();
                  })
          .Method("step",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t depth = args.empty() ? 0 : args[0].as_int();
                    const Value& next = r.GetFieldAt(self, 0);
                    if (!next.is_ref() || next.ref() == nullptr)
                      return Value::Int(depth);
                    return r.Invoke(next.ref(), "step",
                                    {Value::Int(depth + 1)});
                  })
          .Method("probe",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t remaining = args.empty() ? 0 : args[0].as_int();
                    const Value& next = r.GetFieldAt(self, 0);
                    if (remaining <= 0 || !next.is_ref() ||
                        next.ref() == nullptr)
                      return Value::Ref(self);
                    return r.Invoke(next.ref(), "probe",
                                    {Value::Int(remaining - 1)});
                  })
          .Method("walk",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t depth = args.empty() ? 0 : args[0].as_int();
                    // Inner recursion: reference returned and discarded
                    // ("the swap-cluster-proxy is later reclaimed by the
                    // LGC when the outer recursion advances").
                    OBISWAP_ASSIGN_OR_RETURN(
                        Value reached,
                        r.Invoke(self, "probe", {Value::Int(10)}));
                    (void)reached;
                    const Value& next = r.GetFieldAt(self, 0);
                    if (!next.is_ref() || next.ref() == nullptr)
                      return Value::Int(depth);
                    return r.Invoke(next.ref(), "walk",
                                    {Value::Int(depth + 1)});
                  }));
}

std::vector<SwapClusterId> BuildList(runtime::Runtime& rt,
                                     swap::SwappingManager* manager,
                                     const ClassInfo* node_cls, int n,
                                     int per_cluster,
                                     const std::string& global) {
  std::vector<SwapClusterId> clusters;
  if (manager != nullptr) {
    int cluster_count = (n + per_cluster - 1) / per_cluster;
    for (int i = 0; i < cluster_count; ++i)
      clusters.push_back(manager->NewSwapCluster());
  }
  LocalScope scope(rt.heap());
  Object** head = scope.Add(nullptr);
  for (int i = n - 1; i >= 0; --i) {
    Object* node = rt.New(node_cls);
    if (manager != nullptr) {
      OBISWAP_CHECK(manager->Place(node, clusters[i / per_cluster]).ok());
    }
    OBISWAP_CHECK(rt.SetField(node, "value", Value::Int(i)).ok());
    if (*head != nullptr) {
      OBISWAP_CHECK(rt.SetField(node, "next", Value::Ref(*head)).ok());
    }
    *head = node;
  }
  OBISWAP_CHECK(rt.SetGlobal(global, Value::Ref(*head)).ok());
  return clusters;
}

namespace {
void* ThreadTrampoline(void* arg) {
  auto* body = static_cast<const std::function<void()>*>(arg);
  (*body)();
  return nullptr;
}
}  // namespace

void RunWithBigStack(const std::function<void()>& body, size_t stack_bytes) {
  pthread_attr_t attr;
  OBISWAP_CHECK(pthread_attr_init(&attr) == 0);
  OBISWAP_CHECK(pthread_attr_setstacksize(&attr, stack_bytes) == 0);
  pthread_t thread;
  OBISWAP_CHECK(pthread_create(&thread, &attr, ThreadTrampoline,
                               const_cast<std::function<void()>*>(&body)) ==
                0);
  pthread_attr_destroy(&attr);
  OBISWAP_CHECK(pthread_join(thread, nullptr) == 0);
}

double TimeMs(const std::function<void()>& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double MedianTimeMs(int reps, const std::function<void()>& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) samples.push_back(TimeMs(body));
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace obiswap::workload
