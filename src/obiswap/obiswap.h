// Umbrella header: the full obiswap public API.
//
// obiswap is a C++ reproduction of "Object-Swapping for Resource-
// Constrained Devices" (Veiga & Ferreira, ICDCS 2007) — the OBIWAN
// middleware's swap-cluster mechanism plus every substrate it runs on.
// See README.md for the architecture tour and examples/ for usage.
#pragma once

#include "baseline/compression.h"       // heap-compression comparator
#include "baseline/naive_proxy.h"       // per-object surrogate comparator
#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "compress/codec.h"             // LZ77 / RLE codecs
#include "context/context.h"            // memory & connectivity monitors
#include "context/events.h"             // middleware event bus
#include "dgc/dgc.h"                    // device<->server reference-listing DGC
#include "fleet/driver.h"               // fleet-scale simulation harness
#include "fleet/placement.h"            // rendezvous placement directory
#include "net/bridge.h"                 // XML web-service bridge + discovery
#include "net/network.h"                // simulated wireless neighbourhood
#include "net/store_node.h"             // the dumb XML store device
#include "persist/flash_store.h"        // local flash fallback
#include "policy/engine.h"              // declarative XML policies
#include "policy/standard_actions.h"
#include "prefetch/fault_history.h"     // predictive prefetch: fault order
#include "prefetch/predictor.h"
#include "prefetch/prefetcher.h"        // budgeted background swap-in
#include "replication/device.h"         // incremental replication, faults
#include "replication/server.h"
#include "replication/transport.h"
#include "runtime/runtime.h"            // managed heap, LGC, invocation
#include "serialization/graph_xml.h"    // object graph <-> XML
#include "serialization/schema_xml.h"   // class schemas as XML
#include "swap/durability.h"            // replica upkeep under store churn
#include "swap/manager.h"               // THE contribution: object-swapping
#include "swap/proxy.h"
#include "swap/swap_cluster.h"
#include "telemetry/journal.h"          // post-mortem event ring
#include "telemetry/metrics.h"          // counters / gauges / histograms
#include "telemetry/telemetry.h"        // the per-instance bundle
#include "telemetry/tracer.h"           // virtual-clock spans -> Chrome JSON
#include "tier/tier.h"                  // compressed-RAM + flash swap tiers
#include "tx/transaction.h"             // optimistic replica transactions
#include "tx/transport.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"
