#include "dgc/dgc.h"

namespace obiswap::dgc {

using runtime::Object;

DgcServer::DgcServer(replication::ReplicationServer& server)
    : server_(server) {
  server_.SetShipObserver(this);
  server_.rt().heap().AddRootProvider(this);
}

DgcServer::~DgcServer() {
  server_.SetShipObserver(nullptr);
  server_.rt().heap().RemoveRootProvider(this);
}

void DgcServer::OnShipped(DeviceId device,
                          const std::vector<Object*>& shipped) {
  for (Object* master : shipped) {
    Scion& scion = scions_[master->oid()];
    scion.master = master;
    if (scion.holders.insert(device).second) ++stats_.scions_created;
  }
}

void DgcServer::OnReleased(DeviceId device,
                           const std::vector<ObjectId>& released) {
  for (ObjectId oid : released) {
    auto it = scions_.find(oid);
    if (it == scions_.end()) continue;
    if (it->second.holders.erase(device) > 0) ++stats_.scions_released;
    if (it->second.holders.empty()) scions_.erase(it);
  }
}

Status DgcServer::Release(DeviceId device,
                          const std::vector<ObjectId>& oids) {
  // Route through the server so session state stays consistent; the server
  // calls back into OnReleased.
  server_.ReleaseObjects(device, oids);
  return OkStatus();
}

size_t DgcServer::ScionCount(DeviceId device) const {
  size_t count = 0;
  for (const auto& [oid, scion] : scions_) {
    count += scion.holders.count(device);
  }
  return count;
}

size_t DgcServer::TotalScions() const {
  size_t count = 0;
  for (const auto& [oid, scion] : scions_) count += scion.holders.size();
  return count;
}

bool DgcServer::HasScion(DeviceId device, ObjectId oid) const {
  auto it = scions_.find(oid);
  return it != scions_.end() && it->second.holders.count(device) > 0;
}

void DgcServer::EnumerateRoots(
    const std::function<void(Object*)>& visit) {
  for (const auto& [oid, scion] : scions_) visit(scion.master);
}

ReleaseFn DirectRelease(replication::ReplicationServer& server) {
  return [&server](DeviceId device, const std::vector<ObjectId>& oids) {
    server.ReleaseObjects(device, oids);
    return OkStatus();
  };
}

DgcClient::DgcClient(runtime::Runtime& rt,
                     replication::DeviceEndpoint& endpoint,
                     swap::SwappingManager* swap, ReleaseFn release)
    : rt_(rt), endpoint_(endpoint), swap_(swap), release_(std::move(release)) {}

Result<size_t> DgcClient::RunCycle() {
  ++stats_.cycles;
  // A local collection first, so weak replica entries reflect reality.
  rt_.heap().Collect();

  std::unordered_set<ObjectId> held;
  endpoint_.ForEachLiveReplicaOid(
      [&held](ObjectId oid) { held.insert(oid); });
  if (swap_ != nullptr) {
    // Swapped-out members are held on the store device, not in the heap;
    // "the whole swap-cluster must be preserved" while reachable.
    for (SwapClusterId id : swap_->registry().Ids()) {
      const swap::SwapClusterInfo* info = swap_->registry().Find(id);
      if (info->state != swap::SwapState::kSwapped) continue;
      for (ObjectId oid : info->swapped_oids) held.insert(oid);
    }
  }

  // Candidates: everything ever received and not yet released; release
  // whatever is no longer held.
  std::vector<ObjectId> released;
  for (ObjectId oid : endpoint_.received_oids()) {
    if (held.count(oid) == 0) released.push_back(oid);
  }
  if (!released.empty()) {
    OBISWAP_RETURN_IF_ERROR(release_(endpoint_.self(), released));
    endpoint_.MarkReleased(released);
    stats_.releases_sent += released.size();
  }
  return released.size();
}

}  // namespace obiswap::dgc
