// Distributed garbage collection for replicated objects.
//
// OBIWAN's Memory Management module runs a reference-listing DGC between
// the device and the master (paper §2, refs [11,12]): the server keeps a
// *scion* per (device, object) it shipped — a GC root pinning the master
// copy while any device may still hold a replica — and the device, after a
// local collection, reports replicas that are no longer held. "Held" covers
// both live replicas in the heap and members of swapped-out clusters (those
// live on a store device but are still the application's data).
//
// Deliberately NOT covered: the store devices themselves. "There are no
// explicit references among the objects residing in devices running
// applications, and those serialized in swapping devices. All the decisions
// are made locally" (§3) — a swapped cluster's store entry is dropped by the
// replacement-object's finalizer, not by DGC.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "replication/device.h"
#include "replication/server.h"
#include "runtime/runtime.h"
#include "swap/manager.h"

namespace obiswap::dgc {

/// Server side: scion table, registered as a root provider on the master
/// heap so master objects with outstanding replicas survive the master LGC.
class DgcServer final : public runtime::RootProvider,
                        public replication::ReplicationServer::ShipObserver {
 public:
  struct Stats {
    uint64_t scions_created = 0;
    uint64_t scions_released = 0;
  };

  explicit DgcServer(replication::ReplicationServer& server);
  ~DgcServer() override;

  DgcServer(const DgcServer&) = delete;
  DgcServer& operator=(const DgcServer&) = delete;

  /// A device reports replicas it no longer holds.
  Status Release(DeviceId device, const std::vector<ObjectId>& oids);

  /// Outstanding scions for one device / in total.
  size_t ScionCount(DeviceId device) const;
  size_t TotalScions() const;
  bool HasScion(DeviceId device, ObjectId oid) const;

  // ShipObserver
  void OnShipped(DeviceId device,
                 const std::vector<runtime::Object*>& shipped) override;
  void OnReleased(DeviceId device,
                  const std::vector<ObjectId>& released) override;

  // RootProvider: every object with at least one scion is a master root.
  void EnumerateRoots(const std::function<void(runtime::Object*)>& visit)
      override;

  const Stats& stats() const { return stats_; }

 private:
  replication::ReplicationServer& server_;
  /// oid → (master object, per-device holder set).
  struct Scion {
    runtime::Object* master;
    std::unordered_set<DeviceId> holders;
  };
  std::unordered_map<ObjectId, Scion> scions_;
  Stats stats_;
};

/// How the device's release report reaches the server.
using ReleaseFn =
    std::function<Status(DeviceId, const std::vector<ObjectId>&)>;

/// In-process release path.
ReleaseFn DirectRelease(replication::ReplicationServer& server);

/// Device side: computes the set of replicated objects no longer held and
/// reports it. Asynchronous-complete in spirit: a cycle can run at any time
/// and only ever shrinks the holder sets (safe w.r.t. concurrent mutator
/// work because "held" is re-derived from scratch each cycle).
class DgcClient {
 public:
  struct Stats {
    uint64_t cycles = 0;
    uint64_t releases_sent = 0;
  };

  /// `swap` may be null (device without the swapping layer).
  DgcClient(runtime::Runtime& rt, replication::DeviceEndpoint& endpoint,
            swap::SwappingManager* swap, ReleaseFn release);

  /// Runs a DGC cycle: local collection, recompute held set, report the
  /// difference. Returns how many oids were released.
  Result<size_t> RunCycle();

  const Stats& stats() const { return stats_; }

 private:
  runtime::Runtime& rt_;
  replication::DeviceEndpoint& endpoint_;
  swap::SwappingManager* swap_;
  ReleaseFn release_;
  Stats stats_;
};

}  // namespace obiswap::dgc
