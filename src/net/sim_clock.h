// Virtual time for the simulated wireless neighbourhood.
//
// Transfer times over the 700 Kbps "Bluetooth" links are modelled in virtual
// microseconds so the swap-latency experiments are deterministic and
// independent of host speed.
#pragma once

#include <cstdint>

namespace obiswap::net {

class SimClock {
 public:
  uint64_t now_us() const { return now_us_; }
  void Advance(uint64_t delta_us) { now_us_ += delta_us; }

  double now_ms() const { return static_cast<double>(now_us_) / 1000.0; }

 private:
  uint64_t now_us_ = 0;
};

}  // namespace obiswap::net
