// Web-service bridge (the paper's Communication Services).
//
// Mobile VMs of the era lacked remote invocation, so OBIWAN tunnelled calls
// through web services with XML-encoded payloads. We model that: every
// store/fetch/drop becomes an XML request envelope shipped over the
// simulated network, a dispatch on the store device, and an XML response
// envelope shipped back. The store device runs *only* the dumb StoreService
// — no VM, no middleware (§3).
#pragma once

#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/status.h"
#include "net/health.h"
#include "net/network.h"
#include "net/store_node.h"
#include "telemetry/telemetry.h"

namespace obiswap::net {

/// True for the admission-control pushback status: a saturated (not
/// broken, not full) store said "come back later". Retry pacers key their
/// multiplicative backoff on exactly this; every other kResourceExhausted
/// (e.g. a store at byte capacity) is terminal.
inline bool IsPushback(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind("pushback", 0) == 0;
}

/// Server side: turns request envelopes into StoreNode operations. This is
/// the entirety of the software a swapping device needs.
class StoreService {
 public:
  explicit StoreService(StoreNode& node) : node_(node) {}

  /// Handles one XML request, returns the XML response (errors become
  /// response envelopes with a status attribute, never exceptions).
  ///
  /// `now_us` is the arrival's virtual time, consulted by the node's
  /// admission controller when its queue is enabled; a request past the
  /// bounded queue gets a pushback envelope (status RESOURCE_EXHAUSTED,
  /// message "pushback...", `retry_after_us` + `depth` attributes) without
  /// touching the store. Admitted requests report their deterministic
  /// queueing delay through `queue_wait_us` (may be null). The defaults
  /// keep direct callers (tests, older code) byte-identical.
  std::string Handle(const std::string& request_xml, uint64_t now_us = 0,
                     uint64_t* queue_wait_us = nullptr);

  StoreNode& node() { return node_; }

 private:
  StoreNode& node_;
};

/// Directory of announced store devices — the discovery service. Nearby =
/// online, in radio range, and announced.
class Discovery {
 public:
  explicit Discovery(Network& network) : network_(network) {}

  /// A store device announces itself (idempotent re-announce allowed).
  void Announce(StoreNode* node);
  void Withdraw(DeviceId device);

  /// The service endpoint for a device; nullptr if not announced.
  StoreService* ServiceFor(DeviceId device);

  /// O(1) by-id lookup of an announced store's node; nullptr if not
  /// announced. Fleet-size directories address stores by id, so per-RPC
  /// lookups must not pay the O(stores) NearbyStores walk.
  StoreNode* NodeFor(DeviceId device) const;

  /// O(1) "would NearbyStores(from) include `device`": announced, not
  /// `from` itself, online, and in radio range.
  bool IsNearby(DeviceId from, DeviceId device) const;

  /// Store devices reachable from `from` whose advertised free capacity is
  /// at least `min_free_bytes`, best (most free) first.
  std::vector<StoreNode*> NearbyStores(DeviceId from,
                                       size_t min_free_bytes = 0) const;

  /// All announced devices, reachable or not (ascending). The durability
  /// monitor diffs this set across polls to spot permanent departures.
  std::vector<DeviceId> AnnouncedDevices() const;
  bool IsAnnounced(DeviceId device) const {
    return announced_.count(device) > 0;
  }

 private:
  Network& network_;
  std::unordered_map<DeviceId, StoreNode*> announced_;
  std::unordered_map<DeviceId, StoreService> services_;
};

/// Client side: the mobile device's view of remote stores. Each call is two
/// transfers (request out, response back) and a remote dispatch.
class StoreClient {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t retries = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    uint64_t backoff_us = 0;  ///< virtual time spent waiting between retries
    uint64_t breaker_rejections = 0;  ///< calls refused by an open breaker
    uint64_t deadline_failures = 0;   ///< calls abandoned at their budget
    // --- overload path (all zero while queues/budgets are off) -------------
    uint64_t wire_attempts = 0;  ///< request envelopes actually transmitted
    uint64_t pushbacks = 0;      ///< shed responses received
    uint64_t pushbacks_by_class[kPriorityClasses] = {0, 0, 0, 0, 0};
    uint64_t pushback_retries = 0;  ///< retries that honored retry-after
    uint64_t queue_wait_us = 0;  ///< store queueing delay charged to calls
    uint64_t retry_budget_exhausted = 0;  ///< retries refused, no radio
    uint64_t retry_budget_earned = 0;     ///< centitokens earned (successes)
    uint64_t retry_budget_spent = 0;      ///< centitokens spent (retries)
    uint64_t max_store_queue_depth = 0;   ///< deepest depth a pushback showed
  };

  /// Per-store retry-budget token bucket (disabled by default — parity).
  /// Retries earn tokens only from successes: each success deposits
  /// `earn_per_success` centitokens, each retry withdraws
  /// `cost_per_retry`. When a store's bucket cannot cover a retry, the
  /// call fast-fails with its last error instead of touching the radio —
  /// during a brownout the retry rate decays to ~earn/cost of the success
  /// rate (10% at the defaults) instead of amplifying the storm.
  struct RetryBudgetOptions {
    bool enabled = false;
    uint32_t initial_centitokens = 1000;  ///< fresh stores get some slack
    uint32_t max_centitokens = 1000;
    uint32_t earn_per_success = 10;   ///< 0.1 token per success
    uint32_t cost_per_retry = 100;    ///< 1 token per retry
  };

  StoreClient(Network& network, Discovery& discovery, DeviceId self,
              int max_attempts = 3)
      : network_(network),
        discovery_(discovery),
        self_(self),
        max_attempts_(max_attempts) {}

  /// `deadline_us` caps the whole call — attempts, backoff gaps and wire
  /// time — in virtual microseconds; past it the call fails with
  /// kDeadlineExceeded instead of stacking worst-case retries. 0 = none.
  /// `priority` is the request's shedding class; it rides the envelope
  /// only while set_annotate_priority(true) (off by default — the extra
  /// attribute changes wire sizes and therefore transfer clocks).
  Status Store(DeviceId device, SwapKey key, const std::string& text,
               uint64_t deadline_us = 0,
               Priority priority = Priority::kDemandSwapIn);
  Result<std::string> Fetch(DeviceId device, SwapKey key,
                            uint64_t deadline_us = 0,
                            Priority priority = Priority::kDemandSwapIn);
  Status Drop(DeviceId device, SwapKey key, uint64_t deadline_us = 0,
              Priority priority = Priority::kDemandSwapIn);

  const Stats& stats() const { return stats_; }
  DeviceId self() const { return self_; }

  /// Stamp each request envelope with its priority class (`pri`
  /// attribute) so priority-shedding stores can classify it. Off by
  /// default: the attribute changes envelope bytes, hence transfer times.
  void set_annotate_priority(bool enabled) { annotate_priority_ = enabled; }
  bool annotate_priority() const { return annotate_priority_; }

  void set_retry_budget(const RetryBudgetOptions& options) {
    budget_options_ = options;
  }
  const RetryBudgetOptions& retry_budget() const { return budget_options_; }

  /// First retry waits this long (virtual time), doubling per attempt.
  /// Zero disables backoff (the original back-to-back behavior).
  void set_retry_backoff_us(uint64_t base_us) { backoff_base_us_ = base_us; }
  uint64_t retry_backoff_us() const { return backoff_base_us_; }

  /// Ceiling on any single backoff gap: the exponential series saturates
  /// here instead of doubling without bound (or overflowing the shift).
  void set_max_backoff_us(uint64_t max_us) { max_backoff_us_ = max_us; }
  uint64_t max_backoff_us() const { return max_backoff_us_; }

  /// Optional per-store health tracker: every wire attempt feeds it, and an
  /// open circuit breaker fails calls fast before any radio traffic.
  void AttachHealth(HealthTracker* health) { health_ = health; }
  HealthTracker* health() const { return health_; }

  /// Optional shared telemetry bundle: every RPC then records an
  /// "rpc:<op>" span (one child span per network attempt), the "rpc_us"
  /// latency histogram, and rpc_calls/rpc_retries counters.
  void AttachTelemetry(telemetry::Telemetry* t) { telemetry_ = t; }

 private:
  Result<std::string> Call(DeviceId device, SwapKey key, const char* op,
                           const std::string& request_xml,
                           uint64_t deadline_us, Priority priority);

  /// True if the bucket for `device` covers one retry (and charges it).
  bool SpendRetryToken(DeviceId device);
  void EarnRetryToken(DeviceId device);

  Network& network_;
  Discovery& discovery_;
  DeviceId self_;
  int max_attempts_;
  /// Default ≈ one Bluetooth latency window; exponential so lossy-link
  /// benches pay an honest clock cost for retransmissions.
  uint64_t backoff_base_us_ = 30'000;
  /// Default ≈ 1 s of virtual time; past this the series stops doubling.
  uint64_t max_backoff_us_ = 1'000'000;
  Stats stats_;
  telemetry::Telemetry* telemetry_ = nullptr;
  HealthTracker* health_ = nullptr;
  bool annotate_priority_ = false;
  RetryBudgetOptions budget_options_;
  /// Per-store bucket levels, in centitokens (integer — determinism).
  std::unordered_map<DeviceId, uint32_t> budget_tokens_;
};

}  // namespace obiswap::net
