// StoreNode: the paper's "dumb" swapping device.
//
// "The devices that receive swapped objects need not have neither OBIWAN nor
// even a virtual machine installed. They need only be able to store and
// return a textual representation of the serialized objects" (§3). A
// StoreNode does exactly three things — store, fetch, drop — on XML text
// keyed by a unique id, within a storage capacity.
//
// Because these devices are unreliable by design (they wander off, run out
// of battery, and hold data on commodity flash), a StoreNode also carries a
// deterministic fault-injection surface: payload bit-corruption (at rest or
// on fetch) and crash-on-nth-operation, so every durability path in the
// middleware is testable without randomness.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/priority.h"

namespace obiswap::net {

class StoreNode {
 public:
  struct Stats {
    uint64_t stores = 0;
    uint64_t fetches = 0;
    uint64_t drops = 0;
    uint64_t rejected_full = 0;
    uint64_t faulted_ops = 0;      ///< ops refused because the node crashed
    uint64_t corrupted_fetches = 0;  ///< fetches served with flipped bits
    // --- admission control (all zero while the queue is disabled) ----------
    uint64_t admitted = 0;           ///< requests that entered the queue
    uint64_t queue_wait_us = 0;      ///< total queueing delay charged
    uint64_t shed_total = 0;         ///< requests rejected with pushback
    uint64_t shed_by_class[kPriorityClasses] = {0, 0, 0, 0, 0};
    uint64_t max_queue_depth = 0;    ///< deepest backlog seen at an arrival
  };

  /// Bounded virtual-time service model (disabled by default — parity).
  ///
  /// The node tracks a work backlog in virtual time: every admitted request
  /// adds service_time_us of work, and the backlog drains at `concurrency`
  /// server-microseconds per clock microsecond as the shared clock
  /// advances. Waiting callers do not block the shared clock (that would
  /// serialize the whole simulation and the queue could never fill);
  /// instead the deterministic queueing delay is charged to the caller's
  /// latency accounting via the response path. A request arriving with
  /// `concurrency + queue_limit` requests already outstanding is rejected
  /// with kResourceExhausted pushback carrying a retry-after hint.
  struct QueueOptions {
    bool enabled = false;
    size_t concurrency = 2;       ///< simultaneous service slots
    size_t queue_limit = 8;       ///< waiting slots beyond the service slots
    uint64_t service_time_us = 1000;  ///< virtual service time per request
    /// Shed lowest-priority-first: class p keeps only (4-p)/4 of the
    /// waiting slots, so maintenance traffic is refused while demand
    /// swap-ins still have the full queue. Off = one shared FIFO limit.
    bool priority_shedding = false;
  };

  /// One admission decision, all in virtual time.
  struct AdmitResult {
    bool admitted = false;
    uint64_t queue_wait_us = 0;   ///< delay until this request's response
    uint64_t retry_after_us = 0;  ///< rejected: time until a slot frees
    size_t depth = 0;             ///< requests outstanding at arrival
  };

  /// Deterministic fault plan (all knobs off by default).
  struct FaultPlan {
    /// Every Fetch returns the payload with one bit flipped (the stored
    /// copy stays intact — a flaky reader/link on the store side).
    bool corrupt_fetches = false;
    /// After this many further operations (store/fetch/drop) the node
    /// crashes: every later op fails kUnavailable until Restart().
    /// Negative = never.
    int crash_after_ops = -1;
    /// A crash wipes the stored entries (battery pulled mid-life) instead
    /// of preserving them across Restart().
    bool crash_loses_data = false;
  };

  StoreNode(DeviceId device, size_t capacity_bytes)
      : device_(device), capacity_bytes_(capacity_bytes) {}

  DeviceId device() const { return device_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t used_bytes() const { return used_bytes_; }
  size_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  size_t entry_count() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  /// Stores `text` under `key`. kAlreadyExists if the key is taken (the
  /// node is dumb: retry idempotency is the service layer's job, decided by
  /// the content checksum in the request envelope), kResourceExhausted if
  /// it does not fit.
  Status Store(SwapKey key, std::string text);

  /// Returns the stored text. kNotFound if unknown.
  Result<std::string> Fetch(SwapKey key);

  /// Discards the stored text (paper: issued when the swap-cluster's
  /// replacement-object became unreachable). kNotFound if unknown.
  Status Drop(SwapKey key);

  bool Contains(SwapKey key) const { return entries_.count(key) > 0; }

  /// The stored text without the side effects of Fetch (no stats, no fault
  /// accounting); nullptr if unknown. Used by the service layer to compare
  /// content checksums on retried stores.
  const std::string* Peek(SwapKey key) const;

  /// All stored keys (diagnostics / GC audits), unordered.
  std::vector<SwapKey> Keys() const;

  // --- admission control ---------------------------------------------------
  void ConfigureQueue(const QueueOptions& options) { queue_ = options; }
  const QueueOptions& queue_options() const { return queue_; }

  /// Admission decision for a request of class `priority` arriving at
  /// virtual time `now_us`. Always admits while the queue is disabled.
  /// `now_us` must be monotone across calls (it is the shared sim clock).
  AdmitResult Admit(uint64_t now_us, Priority priority);

  // --- fault injection -----------------------------------------------------
  void InjectFaults(const FaultPlan& plan) { faults_ = plan; }
  const FaultPlan& fault_plan() const { return faults_; }

  /// Flips one bit of the payload stored under `key` (at-rest corruption —
  /// the store device's flash went bad). kNotFound if unknown.
  Status CorruptStoredPayload(SwapKey key);

  /// True once crash_after_ops has elapsed; every op fails until Restart().
  bool crashed() const { return crashed_; }

  /// Brings a crashed node back (entries survive unless crash_loses_data).
  /// Clears the crash countdown but keeps the other fault knobs.
  void Restart();

 private:
  /// Counts one operation against the crash countdown; error if crashed.
  Status CheckAlive();

  DeviceId device_;
  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  std::unordered_map<SwapKey, std::string> entries_;
  Stats stats_;
  FaultPlan faults_;
  bool crashed_ = false;

  QueueOptions queue_;
  /// Outstanding work in server-microseconds, as of backlog_as_of_us_.
  uint64_t backlog_us_ = 0;
  uint64_t backlog_as_of_us_ = 0;
};

}  // namespace obiswap::net
