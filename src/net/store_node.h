// StoreNode: the paper's "dumb" swapping device.
//
// "The devices that receive swapped objects need not have neither OBIWAN nor
// even a virtual machine installed. They need only be able to store and
// return a textual representation of the serialized objects" (§3). A
// StoreNode does exactly three things — store, fetch, drop — on XML text
// keyed by a unique id, within a storage capacity.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace obiswap::net {

class StoreNode {
 public:
  struct Stats {
    uint64_t stores = 0;
    uint64_t fetches = 0;
    uint64_t drops = 0;
    uint64_t rejected_full = 0;
  };

  StoreNode(DeviceId device, size_t capacity_bytes)
      : device_(device), capacity_bytes_(capacity_bytes) {}

  DeviceId device() const { return device_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t used_bytes() const { return used_bytes_; }
  size_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  size_t entry_count() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

  /// Stores `text` under `key`. kAlreadyExists if the key is taken,
  /// kResourceExhausted if it does not fit.
  Status Store(SwapKey key, std::string text);

  /// Returns the stored text. kNotFound if unknown.
  Result<std::string> Fetch(SwapKey key);

  /// Discards the stored text (paper: issued when the swap-cluster's
  /// replacement-object became unreachable). kNotFound if unknown.
  Status Drop(SwapKey key);

  bool Contains(SwapKey key) const { return entries_.count(key) > 0; }

  /// All stored keys (diagnostics / GC audits), unordered.
  std::vector<SwapKey> Keys() const;

 private:
  DeviceId device_;
  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  std::unordered_map<SwapKey, std::string> entries_;
  Stats stats_;
};

}  // namespace obiswap::net
