// Simulated short-range wireless network.
//
// Devices register with the network; pairs of devices are either in range or
// not (devices wander in and out — the paper's "nearby devices"). A transfer
// costs latency + size/bandwidth in virtual time and can be lost. The
// default link models the paper's testbed: Bluetooth at 700 Kbps.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/sim_clock.h"

namespace obiswap::net {

/// Link characteristics between a device pair.
struct LinkParams {
  double bandwidth_bps = 700'000.0;  ///< paper: Bluetooth at 700 Kbps
  uint64_t latency_us = 30'000;      ///< per-message setup latency
  double loss_rate = 0.0;            ///< probability a transfer attempt fails
};

class Network {
 public:
  struct Stats {
    uint64_t transfers = 0;
    uint64_t transfer_failures = 0;
    uint64_t bytes_moved = 0;
    uint64_t busy_us = 0;  ///< total virtual link time consumed
  };

  explicit Network(uint64_t seed = 1) : rng_(seed) {}

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }

  /// Registers a device (idempotent). New devices start online.
  void AddDevice(DeviceId device);
  /// Removes a device entirely (all its links disappear).
  void RemoveDevice(DeviceId device);
  bool HasDevice(DeviceId device) const;
  /// Offline devices are unreachable regardless of range.
  void SetOnline(DeviceId device, bool online);
  bool IsOnline(DeviceId device) const;

  /// Marks a device pair as in (or out of) radio range. Symmetric.
  void SetInRange(DeviceId a, DeviceId b, bool in_range);
  bool InRange(DeviceId a, DeviceId b) const;

  // --- deterministic churn scripting ---------------------------------------
  /// Schedules a virtual-time window [start_us, end_us) during which
  /// `device` counts as offline regardless of SetOnline. Windows are
  /// evaluated against clock().now_us(), so churn benches and chaos tests
  /// can script store flapping ahead of time and stay deterministic.
  void AddOutage(DeviceId device, uint64_t start_us, uint64_t end_us);

  /// Convenience: `count` periodic outages of `down_us` each, the first
  /// starting at `first_down_us`, one every `period_us`.
  void FlapDevice(DeviceId device, uint64_t first_down_us, uint64_t down_us,
                  uint64_t period_us, int count);

  void ClearOutages(DeviceId device);
  bool InOutage(DeviceId device) const;

  /// Overrides link parameters for one pair (symmetric). Pairs without an
  /// override use the default link.
  void SetLinkParams(DeviceId a, DeviceId b, LinkParams params);
  void SetDefaultLinkParams(LinkParams params) { default_link_ = params; }
  LinkParams GetLinkParams(DeviceId a, DeviceId b) const;

  /// Moves `bytes` from `from` to `to`. On success returns the virtual
  /// microseconds the transfer took (the clock has been advanced by then).
  /// kUnavailable if offline/out of range or the attempt was lost.
  /// `max_wait_us` caps how much virtual time the caller is willing to
  /// spend: a transfer that would take longer is abandoned at the cap
  /// (the clock advances by `max_wait_us` only — the radio was occupied
  /// that long) and fails with kDeadlineExceeded. UINT64_MAX = no cap.
  Result<uint64_t> Transfer(DeviceId from, DeviceId to, size_t bytes,
                            uint64_t max_wait_us = UINT64_MAX);

  /// Devices currently reachable from `device` (online and in range).
  std::vector<DeviceId> Reachable(DeviceId device) const;

  const Stats& stats() const { return stats_; }

 private:
  static uint64_t PairKey(DeviceId a, DeviceId b);

  SimClock clock_;
  Rng rng_;
  LinkParams default_link_;
  std::unordered_map<DeviceId, bool> devices_;  // id -> online
  /// Scheduled offline windows per device, as [start_us, end_us) pairs.
  std::unordered_map<DeviceId, std::vector<std::pair<uint64_t, uint64_t>>>
      outages_;
  std::unordered_set<uint64_t> in_range_;
  std::unordered_map<uint64_t, LinkParams> link_params_;
  Stats stats_;
};

}  // namespace obiswap::net
