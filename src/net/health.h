// Per-store health scoring and circuit breaking.
//
// The paper's store devices are arbitrary neighbours on a lossy 700 Kbps
// link; treating every one as equally healthy makes a single flaky or slow
// store tax every swap with full retry cost. The HealthTracker keeps an
// incremental per-store score — EWMA latency and error rate over every
// StoreClient attempt — and a virtual-time circuit breaker per store:
//
//   closed ──(consecutive failures / EWMA error trip)──▶ open
//   open ──(cooldown elapsed)──▶ half-open (one probe allowed)
//   half-open ──probe ok──▶ closed     half-open ──probe fails──▶ open
//
// An open breaker takes the store out of the placement and fetch rotation
// (callers order candidates by IsHealthy and the StoreClient fails calls
// fast without touching the radio); the half-open probe lets it earn its
// way back in. A global latency histogram over successful attempts yields
// the p95-derived hedge deadline for SwappingManager's hedged failover
// fetch. Everything runs on the simulation's virtual clock, so the same
// workload always trips the same breakers at the same instants.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "net/sim_clock.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace obiswap::net {

enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState state);

class HealthTracker {
 public:
  struct Options {
    /// Weight of the newest sample in the latency / error-rate EWMAs.
    double ewma_alpha = 0.3;
    /// Consecutive transport failures that trip the breaker outright
    /// (a dead store announces itself quickly).
    uint32_t failure_trip_threshold = 3;
    /// EWMA error rate that trips the breaker once the store has at least
    /// `min_attempts_to_trip` attempts (a lossy store trips slower than a
    /// dead one, but still trips).
    double error_rate_trip = 0.65;
    uint64_t min_attempts_to_trip = 5;
    /// Virtual time an open breaker waits before allowing one half-open
    /// probe. Roughly one durability-monitor poll period by default.
    uint64_t open_cooldown_us = 2'000'000;
    /// Percentile of the successful-attempt latency distribution that the
    /// hedge deadline derives from.
    double hedge_percentile = 95.0;
    /// Successful samples required before HedgeDeadlineUs() reports a
    /// deadline at all (hedging on a cold distribution would misfire).
    uint64_t min_hedge_samples = 8;
    /// Master switch. Disabled, the tracker still scores every attempt
    /// (observation only): AllowRequest always grants and IsHealthy is
    /// always true — the bit-identical-behavior parity mode.
    bool breakers_enabled = true;
  };

  struct StoreHealth {
    BreakerState state = BreakerState::kClosed;
    double ewma_latency_us = 0.0;
    double ewma_error_rate = 0.0;
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t failures = 0;
    uint32_t consecutive_failures = 0;
    uint64_t opened_at_us = 0;  ///< virtual instant of the last trip
    uint64_t opens = 0;         ///< lifetime transitions into open
    bool probe_in_flight = false;
  };

  struct Stats {
    uint64_t outcomes_recorded = 0;
    uint64_t trips = 0;    ///< transitions into open (incl. re-opens)
    uint64_t probes = 0;   ///< half-open probes granted
    uint64_t closes = 0;   ///< transitions back to closed
    uint64_t rejections = 0;  ///< AllowRequest refusals
    uint64_t pushbacks_recorded = 0;  ///< shed responses observed (neutral)
  };

  explicit HealthTracker(const SimClock* clock)
      : HealthTracker(clock, Options()) {}
  HealthTracker(const SimClock* clock, Options options);

  /// One StoreClient wire attempt completed: `ok` is transport success
  /// (both envelope transfers landed — a parsed remote error still counts
  /// as a healthy store), `latency_us` the attempt's virtual duration.
  void RecordOutcome(DeviceId device, bool ok, uint64_t latency_us);

  /// An admission-control pushback arrived from `device`. Strictly neutral
  /// for breaker math: no failure streak, no EWMA sample, no latency — an
  /// overloaded store is healthy, it just asked us to come back later.
  /// Opening breakers on shed traffic would convert a load spike into a
  /// (false) availability incident. Counted for observability only.
  void RecordPushback(DeviceId device);

  /// Breaker gate, consulted before radio traffic. Closed (or unknown)
  /// stores are granted; an open store is refused until its cooldown
  /// elapses, at which point exactly one probe per round trip is granted
  /// (the transition to half-open happens here). Mutating — use IsHealthy
  /// for side-effect-free rotation ordering.
  bool AllowRequest(DeviceId device);

  /// Rotation predicate: true for unknown stores and closed breakers.
  /// Never mutates, so candidate ordering cannot consume the probe.
  bool IsHealthy(DeviceId device) const;
  /// True while the breaker is open (cooldown elapsed or not) — the
  /// StoreClient stops burning retries the instant a call trips it.
  bool IsOpen(DeviceId device) const;

  BreakerState StateOf(DeviceId device) const;
  const StoreHealth* Find(DeviceId device) const;
  size_t open_count() const;
  size_t tracked_count() const { return stores_.size(); }

  /// The p95-derived (by options) hedge deadline in virtual microseconds:
  /// the latency bucket bound below which `hedge_percentile` of successful
  /// attempts complete. 0 while fewer than `min_hedge_samples` successes
  /// have been observed — hedging stays off on a cold start.
  uint64_t HedgeDeadlineUs() const;
  const telemetry::Histogram& success_latency() const { return latency_; }

  /// Observer for every breaker transition (from != to). The owner of the
  /// event bus (SwappingManager) publishes breaker-transition events and
  /// journals them through this.
  using TransitionObserver =
      std::function<void(DeviceId, BreakerState from, BreakerState to)>;
  void SetTransitionObserver(TransitionObserver observer) {
    observer_ = std::move(observer);
  }

  /// Optional shared bundle: transitions bump "breaker_opens" /
  /// "breaker_closes" counters and the "net.open_breakers" gauge.
  void AttachTelemetry(telemetry::Telemetry* t) { telemetry_ = t; }

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  uint64_t now_us() const { return clock_ == nullptr ? 0 : clock_->now_us(); }
  void Transition(DeviceId device, StoreHealth& health, BreakerState to);

  const SimClock* clock_;
  Options options_;
  std::unordered_map<DeviceId, StoreHealth> stores_;
  telemetry::Histogram latency_;  ///< successful attempts, all stores
  TransitionObserver observer_;
  telemetry::Telemetry* telemetry_ = nullptr;
  Stats stats_;
};

}  // namespace obiswap::net
