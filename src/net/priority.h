// Request priority classes for the store RPC path.
//
// Every store call carries one of five classes; when a store's service
// queue saturates it sheds the lowest class first, so a recovery storm of
// maintenance traffic can never starve the demand faults an application is
// actually blocked on. Lower numeric value = more important.
#pragma once

#include <cstdint>

namespace obiswap::net {

enum class Priority : uint8_t {
  kDemandSwapIn = 0,  ///< application blocked on a fault-in
  kSwapOut = 1,       ///< device must free heap now
  kHedgedFetch = 2,   ///< speculative second fetch racing a slow primary
  kPrefetch = 3,      ///< predictive staging, purely opportunistic
  kMaintenance = 4,   ///< durability repair, tier write-back, GC drops
};

inline constexpr int kPriorityClasses = 5;

inline const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kDemandSwapIn:
      return "demand";
    case Priority::kSwapOut:
      return "swap_out";
    case Priority::kHedgedFetch:
      return "hedge";
    case Priority::kPrefetch:
      return "prefetch";
    case Priority::kMaintenance:
      return "maintenance";
  }
  return "demand";
}

}  // namespace obiswap::net
