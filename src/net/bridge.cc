#include "net/bridge.h"

#include <algorithm>

#include "common/checksum.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::net {

namespace {

std::string ErrorResponse(StatusCode code, const std::string& message) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", StatusCodeName(code));
  response->SetAttr("message", message);
  return xml::Write(*response);
}

/// Admission-control rejection: kResourceExhausted plus the retry-after
/// hint and the queue depth at arrival. The "pushback" message prefix is
/// the wire-level marker IsPushback() keys on client-side.
std::string PushbackResponse(const StoreNode::AdmitResult& result) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", StatusCodeName(StatusCode::kResourceExhausted));
  response->SetAttr("message", "pushback: store saturated");
  response->SetIntAttr("retry_after_us",
                       static_cast<int64_t>(result.retry_after_us));
  response->SetIntAttr("depth", static_cast<int64_t>(result.depth));
  return xml::Write(*response);
}

std::string OkResponse(const std::string* payload = nullptr) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", "OK");
  if (payload != nullptr) {
    response->AddElement("payload")->AddText(*payload);
  }
  return xml::Write(*response);
}

StatusCode CodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kDataLoss, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

/// splitmix64 finalizer — a stateless bit mixer for the per-key backoff
/// jitter. Not Rng: the jitter must depend only on (key, device, attempt)
/// so identical runs reproduce it without consuming shared random state.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// What the retry loop needs to know about a pushback envelope, peeked
/// without disturbing the normal ParseResponse path.
struct PushbackInfo {
  bool is_pushback = false;
  uint64_t retry_after_us = 0;
  uint64_t depth = 0;
  std::string message;
};

PushbackInfo PeekPushback(const std::string& response_xml) {
  PushbackInfo info;
  auto parsed = xml::Parse(response_xml);
  if (!parsed.ok()) return info;
  const xml::Node& response = **parsed;
  const std::string* status_name = response.FindAttr("status");
  if (status_name == nullptr ||
      *status_name != StatusCodeName(StatusCode::kResourceExhausted)) {
    return info;
  }
  const std::string* message = response.FindAttr("message");
  if (message == nullptr || message->rfind("pushback", 0) != 0) return info;
  info.is_pushback = true;
  info.message = *message;
  auto retry_after = response.GetIntAttr("retry_after_us");
  if (retry_after.ok() && *retry_after > 0)
    info.retry_after_us = static_cast<uint64_t>(*retry_after);
  auto depth = response.GetIntAttr("depth");
  if (depth.ok() && *depth > 0) info.depth = static_cast<uint64_t>(*depth);
  return info;
}

}  // namespace

std::string StoreService::Handle(const std::string& request_xml,
                                 uint64_t now_us, uint64_t* queue_wait_us) {
  auto parsed = xml::Parse(request_xml);
  if (!parsed.ok())
    return ErrorResponse(StatusCode::kInvalidArgument,
                         "bad request: " + parsed.status().message());
  const xml::Node& request = **parsed;
  if (request.name() != "request")
    return ErrorResponse(StatusCode::kInvalidArgument, "not a request");
  const std::string* op = request.FindAttr("op");
  if (op == nullptr)
    return ErrorResponse(StatusCode::kInvalidArgument, "missing op");
  auto key_attr = request.GetIntAttr("key");
  if (!key_attr.ok())
    return ErrorResponse(StatusCode::kInvalidArgument, "missing key");
  SwapKey key(static_cast<uint64_t>(*key_attr));

  // Admission control: well-formed requests queue against the node's
  // bounded virtual-time service model before any store work happens. An
  // unstamped request (annotation off, legacy caller) is treated as demand
  // class — the strictest shedding applies only to traffic that opted in.
  if (node_.queue_options().enabled) {
    Priority priority = Priority::kDemandSwapIn;
    if (request.FindAttr("pri") != nullptr) {
      auto pri_attr = request.GetIntAttr("pri");
      if (!pri_attr.ok() || *pri_attr < 0 || *pri_attr >= kPriorityClasses)
        return ErrorResponse(StatusCode::kInvalidArgument, "bad pri");
      priority = static_cast<Priority>(*pri_attr);
    }
    StoreNode::AdmitResult admit = node_.Admit(now_us, priority);
    if (!admit.admitted) return PushbackResponse(admit);
    if (queue_wait_us != nullptr) *queue_wait_us = admit.queue_wait_us;
  }

  if (*op == "store") {
    const xml::Node* payload = request.FindChild("payload");
    if (payload == nullptr)
      return ErrorResponse(StatusCode::kInvalidArgument, "missing payload");
    std::string text = payload->InnerText();
    // The envelope carries an Adler-32 of the content. It guards the
    // payload in transit and — crucially — makes retried stores
    // idempotent: when the store executed but the response envelope was
    // lost, the retry hits kAlreadyExists on the dumb node; an existing
    // entry with the same content checksum means the payload is already
    // durably stored, so the retry reports success.
    bool has_checksum = request.FindAttr("checksum") != nullptr;
    int64_t checksum = 0;
    if (has_checksum) {
      auto checksum_attr = request.GetIntAttr("checksum");
      if (!checksum_attr.ok())
        return ErrorResponse(StatusCode::kInvalidArgument, "bad checksum");
      checksum = *checksum_attr;
      if (static_cast<int64_t>(Adler32(text)) != checksum)
        return ErrorResponse(StatusCode::kDataLoss,
                             "store payload corrupted in transit");
    }
    Status status = node_.Store(key, std::move(text));
    if (status.code() == StatusCode::kAlreadyExists && has_checksum) {
      const std::string* existing = node_.Peek(key);
      if (existing != nullptr &&
          static_cast<int64_t>(Adler32(*existing)) == checksum) {
        return OkResponse();  // identical content: retried store succeeded
      }
    }
    if (!status.ok()) return ErrorResponse(status.code(), status.message());
    return OkResponse();
  }
  if (*op == "fetch") {
    Result<std::string> text = node_.Fetch(key);
    if (!text.ok())
      return ErrorResponse(text.status().code(), text.status().message());
    return OkResponse(&*text);
  }
  if (*op == "drop") {
    Status status = node_.Drop(key);
    if (!status.ok()) return ErrorResponse(status.code(), status.message());
    return OkResponse();
  }
  return ErrorResponse(StatusCode::kInvalidArgument, "unknown op '" + *op +
                                                         "'");
}

void Discovery::Announce(StoreNode* node) {
  announced_[node->device()] = node;
  services_.erase(node->device());
  services_.emplace(node->device(), StoreService(*node));
}

void Discovery::Withdraw(DeviceId device) {
  announced_.erase(device);
  services_.erase(device);
}

StoreService* Discovery::ServiceFor(DeviceId device) {
  auto it = services_.find(device);
  return it == services_.end() ? nullptr : &it->second;
}

StoreNode* Discovery::NodeFor(DeviceId device) const {
  auto it = announced_.find(device);
  return it == announced_.end() ? nullptr : it->second;
}

bool Discovery::IsNearby(DeviceId from, DeviceId device) const {
  if (device == from || announced_.count(device) == 0) return false;
  return network_.IsOnline(device) && network_.InRange(from, device);
}

std::vector<DeviceId> Discovery::AnnouncedDevices() const {
  std::vector<DeviceId> out;
  out.reserve(announced_.size());
  for (const auto& [device, node] : announced_) out.push_back(device);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StoreNode*> Discovery::NearbyStores(DeviceId from,
                                                size_t min_free_bytes) const {
  std::vector<StoreNode*> out;
  for (const auto& [device, node] : announced_) {
    if (device == from) continue;
    if (!network_.IsOnline(device) || !network_.InRange(from, device))
      continue;
    if (node->free_bytes() < min_free_bytes) continue;
    out.push_back(node);
  }
  std::sort(out.begin(), out.end(), [](StoreNode* a, StoreNode* b) {
    if (a->free_bytes() != b->free_bytes())
      return a->free_bytes() > b->free_bytes();
    return a->device() < b->device();
  });
  return out;
}

Result<std::string> StoreClient::Call(DeviceId device, SwapKey key,
                                      const char* op,
                                      const std::string& request_xml,
                                      uint64_t deadline_us,
                                      Priority priority) {
  telemetry::ScopedSpan rpc_span(telemetry_, std::string("rpc:") + op, "net",
                                 telemetry::Hist(telemetry_, "rpc_us"));
  if (telemetry_ != nullptr)
    telemetry_->metrics().GetCounter("rpc_calls").Increment();
  // Breaker gate: a store known to be sick is refused before any radio
  // traffic, so K-replica walks skip it at zero virtual-time cost.
  if (health_ != nullptr && !health_->AllowRequest(device)) {
    ++stats_.breaker_rejections;
    if (telemetry_ != nullptr)
      telemetry_->metrics().GetCounter("rpc_breaker_rejections").Increment();
    return UnavailableError("circuit breaker open for device " +
                            device.ToString());
  }
  StoreService* service = discovery_.ServiceFor(device);
  if (service == nullptr)
    return NotFoundError("device " + device.ToString() + " not announced");
  ++stats_.calls;
  const uint64_t start_us = network_.clock().now_us();
  // Remaining virtual-time budget; UINT64_MAX when the call is unbounded.
  auto budget_left = [&]() -> uint64_t {
    if (deadline_us == 0) return UINT64_MAX;
    uint64_t used = network_.clock().now_us() - start_us;
    return used >= deadline_us ? 0 : deadline_us - used;
  };
  Status last = UnavailableError("no attempt made");
  // While the last attempt was shed, this holds its envelope (returned
  // verbatim on exhaustion so wrappers parse the real pushback status) and
  // the store's retry-after hint replaces the exponential backoff series.
  std::string pushback_response;
  uint64_t pushback_wait_us = 0;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) {
      // Retry budget: a retry must be covered by this store's token
      // bucket or the call fast-fails with what it has — no radio, no
      // backoff sleep. This is what bounds retry amplification in a storm.
      if (budget_options_.enabled && !SpendRetryToken(device)) {
        ++stats_.retry_budget_exhausted;
        if (!pushback_response.empty()) return pushback_response;
        return last;
      }
      ++stats_.retries;
      if (telemetry_ != nullptr)
        telemetry_->metrics().GetCounter("rpc_retries").Increment();
      if (pushback_wait_us > 0) {
        // Shed by admission control: honor the store's deterministic
        // retry-after hint instead of doubling a blind series. A hint at
        // or past the remaining budget cannot succeed — fail fast rather
        // than sleep into the deadline.
        if (pushback_wait_us >= budget_left()) {
          ++stats_.deadline_failures;
          return DeadlineExceededError(
              "pushback retry-after " + std::to_string(pushback_wait_us) +
              "us exceeds rpc budget");
        }
        network_.clock().Advance(pushback_wait_us);
        stats_.backoff_us += pushback_wait_us;
        ++stats_.pushback_retries;
      } else if (backoff_base_us_ > 0) {
        // Exponential backoff in virtual time: 1x, 2x, 4x, ... so lossy
        // links charge an honest retransmission delay to the clock. The
        // shift saturates (a raised max_attempts must not overflow) and
        // the series caps at max_backoff_us_.
        int shift = std::min(attempt - 1, 62);
        uint64_t wait = backoff_base_us_ << shift;
        if ((wait >> shift) != backoff_base_us_ || wait > max_backoff_us_)
          wait = max_backoff_us_;
        // Deterministic per-key jitter in [0, wait/2]: devices retrying
        // the same outage desynchronize instead of forming lockstep retry
        // storms, and the same (key, device, attempt) always jitters the
        // same way, keeping runs reproducible.
        wait += Mix64(key.value() ^
                      (static_cast<uint64_t>(attempt) *
                       0x9E3779B97F4A7C15ull) ^
                      self_.value()) %
                (wait / 2 + 1);
        wait = std::min(wait, budget_left());  // never sleep past the budget
        network_.clock().Advance(wait);
        stats_.backoff_us += wait;
      }
      if (budget_left() == 0) {
        ++stats_.deadline_failures;
        return DeadlineExceededError("rpc budget exhausted before retry " +
                                     std::to_string(attempt));
      }
    }
    pushback_wait_us = 0;
    pushback_response.clear();
    // One child span per wire attempt: a traced retry storm shows each
    // retransmission (and its backoff gap) inside the enclosing rpc span.
    telemetry::ScopedSpan attempt_span(telemetry_, "rpc_attempt", "net");
    const uint64_t attempt_begin_us = network_.clock().now_us();
    // A wire attempt is a health sample: transport success (both envelope
    // transfers landed) scores the store up; loss, unreachability or a
    // budget-clipped wait scores it down. Parsed remote errors (e.g.
    // kNotFound) are the *store working correctly* and never count
    // against it.
    auto fail_attempt = [&](const Status& status) {
      last = status;
      if (health_ != nullptr)
        health_->RecordOutcome(device, /*ok=*/false,
                               network_.clock().now_us() - attempt_begin_us);
    };
    ++stats_.wire_attempts;
    Result<uint64_t> out =
        network_.Transfer(self_, device, request_xml.size(), budget_left());
    if (!out.ok()) {
      fail_attempt(out.status());
    } else {
      stats_.bytes_sent += request_xml.size();
      uint64_t queue_wait_us = 0;
      std::string response = service->Handle(
          request_xml, network_.clock().now_us(), &queue_wait_us);
      Result<uint64_t> back =
          network_.Transfer(device, self_, response.size(), budget_left());
      if (!back.ok()) {
        fail_attempt(back.status());
      } else {
        stats_.bytes_received += response.size();
        PushbackInfo pushback = PeekPushback(response);
        if (pushback.is_pushback) {
          // Shed, not served. Neutral for the circuit breaker — an
          // overloaded store is not a broken one, and tripping breakers
          // on shed traffic would amplify the very storm the shedding is
          // damping.
          ++stats_.pushbacks;
          ++stats_.pushbacks_by_class[static_cast<int>(priority)];
          if (pushback.depth > stats_.max_store_queue_depth)
            stats_.max_store_queue_depth = pushback.depth;
          if (health_ != nullptr) health_->RecordPushback(device);
          last = ResourceExhaustedError(pushback.message);
          pushback_wait_us =
              pushback.retry_after_us > 0 ? pushback.retry_after_us : 1;
          pushback_response = std::move(response);
          continue;
        }
        // Queue delay is real slowness: fold it into the health latency
        // sample so hedging and EWMA react to store load, not just wire
        // time. Zero while queues are off — byte-parity holds.
        stats_.queue_wait_us += queue_wait_us;
        if (health_ != nullptr)
          health_->RecordOutcome(device, /*ok=*/true,
                                 network_.clock().now_us() -
                                     attempt_begin_us + queue_wait_us);
        if (budget_options_.enabled) EarnRetryToken(device);
        return response;
      }
    }
    if (last.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadline_failures;
      return last;
    }
    if (last.code() != StatusCode::kUnavailable) return last;
    // If this attempt just tripped the breaker, further retries within
    // this call would only burn backoff time — fail fast instead.
    if (health_ != nullptr && health_->IsOpen(device)) break;
  }
  if (!pushback_response.empty()) return pushback_response;
  return last;
}

bool StoreClient::SpendRetryToken(DeviceId device) {
  auto [it, inserted] =
      budget_tokens_.try_emplace(device, budget_options_.initial_centitokens);
  if (it->second < budget_options_.cost_per_retry) return false;
  it->second -= budget_options_.cost_per_retry;
  stats_.retry_budget_spent += budget_options_.cost_per_retry;
  return true;
}

void StoreClient::EarnRetryToken(DeviceId device) {
  auto [it, inserted] =
      budget_tokens_.try_emplace(device, budget_options_.initial_centitokens);
  uint32_t headroom = budget_options_.max_centitokens > it->second
                          ? budget_options_.max_centitokens - it->second
                          : 0;
  uint32_t earned = std::min(budget_options_.earn_per_success, headroom);
  it->second += earned;
  stats_.retry_budget_earned += earned;
}

namespace {
/// Parses a response envelope into Status + optional payload.
Result<std::string> ParseResponse(const std::string& response_xml,
                                  bool expect_payload) {
  auto parsed = xml::Parse(response_xml);
  if (!parsed.ok()) return parsed.status();
  const xml::Node& response = **parsed;
  const std::string* status_name = response.FindAttr("status");
  if (status_name == nullptr)
    return DataLossError("response missing status");
  if (*status_name != "OK") {
    const std::string* message = response.FindAttr("message");
    return Status(CodeFromName(*status_name),
                  message != nullptr ? *message : "remote error");
  }
  if (!expect_payload) return std::string();
  const xml::Node* payload = response.FindChild("payload");
  if (payload == nullptr) return DataLossError("response missing payload");
  return payload->InnerText();
}
}  // namespace

Status StoreClient::Store(DeviceId device, SwapKey key,
                          const std::string& text, uint64_t deadline_us,
                          Priority priority) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "store");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  // Content checksum: transit integrity + retry idempotency (see
  // StoreService::Handle).
  request->SetIntAttr("checksum", static_cast<int64_t>(Adler32(text)));
  if (annotate_priority_)
    request->SetIntAttr("pri", static_cast<int64_t>(priority));
  request->AddElement("payload")->AddText(text);
  OBISWAP_ASSIGN_OR_RETURN(
      std::string response,
      Call(device, key, "store", xml::Write(*request), deadline_us, priority));
  OBISWAP_ASSIGN_OR_RETURN(std::string ignored,
                           ParseResponse(response, /*expect_payload=*/false));
  (void)ignored;
  return OkStatus();
}

Result<std::string> StoreClient::Fetch(DeviceId device, SwapKey key,
                                       uint64_t deadline_us,
                                       Priority priority) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "fetch");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  if (annotate_priority_)
    request->SetIntAttr("pri", static_cast<int64_t>(priority));
  OBISWAP_ASSIGN_OR_RETURN(
      std::string response,
      Call(device, key, "fetch", xml::Write(*request), deadline_us, priority));
  return ParseResponse(response, /*expect_payload=*/true);
}

Status StoreClient::Drop(DeviceId device, SwapKey key, uint64_t deadline_us,
                         Priority priority) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "drop");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  if (annotate_priority_)
    request->SetIntAttr("pri", static_cast<int64_t>(priority));
  OBISWAP_ASSIGN_OR_RETURN(
      std::string response,
      Call(device, key, "drop", xml::Write(*request), deadline_us, priority));
  OBISWAP_ASSIGN_OR_RETURN(std::string ignored,
                           ParseResponse(response, /*expect_payload=*/false));
  (void)ignored;
  return OkStatus();
}

}  // namespace obiswap::net
