#include "net/bridge.h"

#include <algorithm>

#include "common/checksum.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::net {

namespace {

std::string ErrorResponse(StatusCode code, const std::string& message) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", StatusCodeName(code));
  response->SetAttr("message", message);
  return xml::Write(*response);
}

std::string OkResponse(const std::string* payload = nullptr) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", "OK");
  if (payload != nullptr) {
    response->AddElement("payload")->AddText(*payload);
  }
  return xml::Write(*response);
}

StatusCode CodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kDataLoss, StatusCode::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

}  // namespace

std::string StoreService::Handle(const std::string& request_xml) {
  auto parsed = xml::Parse(request_xml);
  if (!parsed.ok())
    return ErrorResponse(StatusCode::kInvalidArgument,
                         "bad request: " + parsed.status().message());
  const xml::Node& request = **parsed;
  if (request.name() != "request")
    return ErrorResponse(StatusCode::kInvalidArgument, "not a request");
  const std::string* op = request.FindAttr("op");
  if (op == nullptr)
    return ErrorResponse(StatusCode::kInvalidArgument, "missing op");
  auto key_attr = request.GetIntAttr("key");
  if (!key_attr.ok())
    return ErrorResponse(StatusCode::kInvalidArgument, "missing key");
  SwapKey key(static_cast<uint64_t>(*key_attr));

  if (*op == "store") {
    const xml::Node* payload = request.FindChild("payload");
    if (payload == nullptr)
      return ErrorResponse(StatusCode::kInvalidArgument, "missing payload");
    std::string text = payload->InnerText();
    // The envelope carries an Adler-32 of the content. It guards the
    // payload in transit and — crucially — makes retried stores
    // idempotent: when the store executed but the response envelope was
    // lost, the retry hits kAlreadyExists on the dumb node; an existing
    // entry with the same content checksum means the payload is already
    // durably stored, so the retry reports success.
    bool has_checksum = request.FindAttr("checksum") != nullptr;
    int64_t checksum = 0;
    if (has_checksum) {
      auto checksum_attr = request.GetIntAttr("checksum");
      if (!checksum_attr.ok())
        return ErrorResponse(StatusCode::kInvalidArgument, "bad checksum");
      checksum = *checksum_attr;
      if (static_cast<int64_t>(Adler32(text)) != checksum)
        return ErrorResponse(StatusCode::kDataLoss,
                             "store payload corrupted in transit");
    }
    Status status = node_.Store(key, std::move(text));
    if (status.code() == StatusCode::kAlreadyExists && has_checksum) {
      const std::string* existing = node_.Peek(key);
      if (existing != nullptr &&
          static_cast<int64_t>(Adler32(*existing)) == checksum) {
        return OkResponse();  // identical content: retried store succeeded
      }
    }
    if (!status.ok()) return ErrorResponse(status.code(), status.message());
    return OkResponse();
  }
  if (*op == "fetch") {
    Result<std::string> text = node_.Fetch(key);
    if (!text.ok())
      return ErrorResponse(text.status().code(), text.status().message());
    return OkResponse(&*text);
  }
  if (*op == "drop") {
    Status status = node_.Drop(key);
    if (!status.ok()) return ErrorResponse(status.code(), status.message());
    return OkResponse();
  }
  return ErrorResponse(StatusCode::kInvalidArgument, "unknown op '" + *op +
                                                         "'");
}

void Discovery::Announce(StoreNode* node) {
  announced_[node->device()] = node;
  services_.erase(node->device());
  services_.emplace(node->device(), StoreService(*node));
}

void Discovery::Withdraw(DeviceId device) {
  announced_.erase(device);
  services_.erase(device);
}

StoreService* Discovery::ServiceFor(DeviceId device) {
  auto it = services_.find(device);
  return it == services_.end() ? nullptr : &it->second;
}

std::vector<DeviceId> Discovery::AnnouncedDevices() const {
  std::vector<DeviceId> out;
  out.reserve(announced_.size());
  for (const auto& [device, node] : announced_) out.push_back(device);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StoreNode*> Discovery::NearbyStores(DeviceId from,
                                                size_t min_free_bytes) const {
  std::vector<StoreNode*> out;
  for (const auto& [device, node] : announced_) {
    if (device == from) continue;
    if (!network_.IsOnline(device) || !network_.InRange(from, device))
      continue;
    if (node->free_bytes() < min_free_bytes) continue;
    out.push_back(node);
  }
  std::sort(out.begin(), out.end(), [](StoreNode* a, StoreNode* b) {
    if (a->free_bytes() != b->free_bytes())
      return a->free_bytes() > b->free_bytes();
    return a->device() < b->device();
  });
  return out;
}

Result<std::string> StoreClient::Call(DeviceId device, const char* op,
                                      const std::string& request_xml) {
  telemetry::ScopedSpan rpc_span(telemetry_, std::string("rpc:") + op, "net",
                                 telemetry::Hist(telemetry_, "rpc_us"));
  if (telemetry_ != nullptr)
    telemetry_->metrics().GetCounter("rpc_calls").Increment();
  StoreService* service = discovery_.ServiceFor(device);
  if (service == nullptr)
    return NotFoundError("device " + device.ToString() + " not announced");
  ++stats_.calls;
  Status last = UnavailableError("no attempt made");
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      if (telemetry_ != nullptr)
        telemetry_->metrics().GetCounter("rpc_retries").Increment();
      if (backoff_base_us_ > 0) {
        // Exponential backoff in virtual time: 1x, 2x, 4x, ... so lossy
        // links charge an honest retransmission delay to the clock.
        uint64_t wait = backoff_base_us_ << (attempt - 1);
        network_.clock().Advance(wait);
        stats_.backoff_us += wait;
      }
    }
    // One child span per wire attempt: a traced retry storm shows each
    // retransmission (and its backoff gap) inside the enclosing rpc span.
    telemetry::ScopedSpan attempt_span(telemetry_, "rpc_attempt", "net");
    Result<uint64_t> out = network_.Transfer(self_, device,
                                             request_xml.size());
    if (!out.ok()) {
      last = out.status();
      if (last.code() != StatusCode::kUnavailable) return last;
      continue;
    }
    stats_.bytes_sent += request_xml.size();
    std::string response = service->Handle(request_xml);
    Result<uint64_t> back =
        network_.Transfer(device, self_, response.size());
    if (!back.ok()) {
      last = back.status();
      if (last.code() != StatusCode::kUnavailable) return last;
      continue;
    }
    stats_.bytes_received += response.size();
    return response;
  }
  return last;
}

namespace {
/// Parses a response envelope into Status + optional payload.
Result<std::string> ParseResponse(const std::string& response_xml,
                                  bool expect_payload) {
  auto parsed = xml::Parse(response_xml);
  if (!parsed.ok()) return parsed.status();
  const xml::Node& response = **parsed;
  const std::string* status_name = response.FindAttr("status");
  if (status_name == nullptr)
    return DataLossError("response missing status");
  if (*status_name != "OK") {
    const std::string* message = response.FindAttr("message");
    return Status(CodeFromName(*status_name),
                  message != nullptr ? *message : "remote error");
  }
  if (!expect_payload) return std::string();
  const xml::Node* payload = response.FindChild("payload");
  if (payload == nullptr) return DataLossError("response missing payload");
  return payload->InnerText();
}
}  // namespace

Status StoreClient::Store(DeviceId device, SwapKey key,
                          const std::string& text) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "store");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  // Content checksum: transit integrity + retry idempotency (see
  // StoreService::Handle).
  request->SetIntAttr("checksum", static_cast<int64_t>(Adler32(text)));
  request->AddElement("payload")->AddText(text);
  OBISWAP_ASSIGN_OR_RETURN(std::string response,
                           Call(device, "store", xml::Write(*request)));
  OBISWAP_ASSIGN_OR_RETURN(std::string ignored,
                           ParseResponse(response, /*expect_payload=*/false));
  (void)ignored;
  return OkStatus();
}

Result<std::string> StoreClient::Fetch(DeviceId device, SwapKey key) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "fetch");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  OBISWAP_ASSIGN_OR_RETURN(std::string response,
                           Call(device, "fetch", xml::Write(*request)));
  return ParseResponse(response, /*expect_payload=*/true);
}

Status StoreClient::Drop(DeviceId device, SwapKey key) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "drop");
  request->SetIntAttr("key", static_cast<int64_t>(key.value()));
  OBISWAP_ASSIGN_OR_RETURN(std::string response,
                           Call(device, "drop", xml::Write(*request)));
  OBISWAP_ASSIGN_OR_RETURN(std::string ignored,
                           ParseResponse(response, /*expect_payload=*/false));
  (void)ignored;
  return OkStatus();
}

}  // namespace obiswap::net
