#include "net/store_node.h"

namespace obiswap::net {

namespace {
/// Deterministic single-bit flip: middle byte, lowest bit.
void FlipOneBit(std::string& text) {
  if (text.empty()) return;
  text[text.size() / 2] ^= 0x01;
}
}  // namespace

Status StoreNode::CheckAlive() {
  if (!crashed_ && faults_.crash_after_ops >= 0) {
    if (faults_.crash_after_ops == 0) {
      crashed_ = true;
      if (faults_.crash_loses_data) {
        entries_.clear();
        used_bytes_ = 0;
      }
    } else {
      --faults_.crash_after_ops;
    }
  }
  if (crashed_) {
    ++stats_.faulted_ops;
    return UnavailableError("store device " + device_.ToString() +
                            " crashed");
  }
  return OkStatus();
}

Status StoreNode::Store(SwapKey key, std::string text) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  if (entries_.count(key) > 0) {
    return AlreadyExistsError("key " + key.ToString() + " already stored");
  }
  if (used_bytes_ + text.size() > capacity_bytes_) {
    ++stats_.rejected_full;
    return ResourceExhaustedError("store full on device " +
                                  device_.ToString());
  }
  used_bytes_ += text.size();
  entries_.emplace(key, std::move(text));
  ++stats_.stores;
  return OkStatus();
}

Result<std::string> StoreNode::Fetch(SwapKey key) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  ++stats_.fetches;
  std::string text = it->second;
  if (faults_.corrupt_fetches) {
    FlipOneBit(text);
    ++stats_.corrupted_fetches;
  }
  return text;
}

Status StoreNode::Drop(SwapKey key) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  ++stats_.drops;
  return OkStatus();
}

const std::string* StoreNode::Peek(SwapKey key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Status StoreNode::CorruptStoredPayload(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  FlipOneBit(it->second);
  return OkStatus();
}

void StoreNode::Restart() {
  crashed_ = false;
  faults_.crash_after_ops = -1;
}

std::vector<SwapKey> StoreNode::Keys() const {
  std::vector<SwapKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, text] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace obiswap::net
