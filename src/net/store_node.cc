#include "net/store_node.h"

namespace obiswap::net {

namespace {
/// Deterministic single-bit flip: middle byte, lowest bit.
void FlipOneBit(std::string& text) {
  if (text.empty()) return;
  text[text.size() / 2] ^= 0x01;
}
}  // namespace

Status StoreNode::CheckAlive() {
  if (!crashed_ && faults_.crash_after_ops >= 0) {
    if (faults_.crash_after_ops == 0) {
      crashed_ = true;
      if (faults_.crash_loses_data) {
        entries_.clear();
        used_bytes_ = 0;
      }
    } else {
      --faults_.crash_after_ops;
    }
  }
  if (crashed_) {
    ++stats_.faulted_ops;
    return UnavailableError("store device " + device_.ToString() +
                            " crashed");
  }
  return OkStatus();
}

Status StoreNode::Store(SwapKey key, std::string text) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  if (entries_.count(key) > 0) {
    return AlreadyExistsError("key " + key.ToString() + " already stored");
  }
  if (used_bytes_ + text.size() > capacity_bytes_) {
    ++stats_.rejected_full;
    return ResourceExhaustedError("store full on device " +
                                  device_.ToString());
  }
  used_bytes_ += text.size();
  entries_.emplace(key, std::move(text));
  ++stats_.stores;
  return OkStatus();
}

Result<std::string> StoreNode::Fetch(SwapKey key) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  ++stats_.fetches;
  std::string text = it->second;
  if (faults_.corrupt_fetches) {
    FlipOneBit(text);
    ++stats_.corrupted_fetches;
  }
  return text;
}

Status StoreNode::Drop(SwapKey key) {
  OBISWAP_RETURN_IF_ERROR(CheckAlive());
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  ++stats_.drops;
  return OkStatus();
}

const std::string* StoreNode::Peek(SwapKey key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

Status StoreNode::CorruptStoredPayload(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  FlipOneBit(it->second);
  return OkStatus();
}

void StoreNode::Restart() {
  crashed_ = false;
  faults_.crash_after_ops = -1;
}

std::vector<SwapKey> StoreNode::Keys() const {
  std::vector<SwapKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, text] : entries_) keys.push_back(key);
  return keys;
}

StoreNode::AdmitResult StoreNode::Admit(uint64_t now_us, Priority priority) {
  AdmitResult result;
  if (!queue_.enabled) {
    result.admitted = true;
    return result;
  }
  const uint64_t service = queue_.service_time_us > 0 ? queue_.service_time_us
                                                      : 1;
  const uint64_t servers = queue_.concurrency > 0 ? queue_.concurrency : 1;
  // Drain the backlog for the virtual time that passed since the last
  // arrival: `servers` server-microseconds retire per clock microsecond.
  if (now_us > backlog_as_of_us_) {
    uint64_t drained = (now_us - backlog_as_of_us_) * servers;
    backlog_us_ = backlog_us_ > drained ? backlog_us_ - drained : 0;
  }
  backlog_as_of_us_ = now_us;

  const size_t depth =
      static_cast<size_t>((backlog_us_ + service - 1) / service);
  result.depth = depth;
  if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;

  // Per-class admission bound: with shedding on, class p keeps only
  // (4-p)/4 of the waiting slots past the service slots, so the lowest
  // class is refused first as the backlog builds.
  const int pri = static_cast<int>(priority);
  size_t limit = servers + queue_.queue_limit;
  if (queue_.priority_shedding) {
    limit = servers + (queue_.queue_limit *
                       static_cast<size_t>(kPriorityClasses - 1 - pri)) /
                          static_cast<size_t>(kPriorityClasses - 1);
  }
  if (limit == 0) limit = 1;

  if (depth >= limit) {
    ++stats_.shed_total;
    ++stats_.shed_by_class[pri];
    // Time until the backlog has drained below this class's bound — the
    // deterministic moment a retry would be admitted.
    uint64_t admissible_backlog = (limit - 1) * service;
    uint64_t excess = backlog_us_ > admissible_backlog
                          ? backlog_us_ - admissible_backlog
                          : 0;
    result.retry_after_us = (excess + servers - 1) / servers;
    if (result.retry_after_us == 0) result.retry_after_us = 1;
    return result;
  }

  // Admitted: the response is due after the backlog ahead of us drains
  // plus our own service time; charge that wait to the caller.
  result.admitted = true;
  result.queue_wait_us = backlog_us_ / servers + service;
  backlog_us_ += service;
  ++stats_.admitted;
  stats_.queue_wait_us += result.queue_wait_us;
  return result;
}

}  // namespace obiswap::net
