#include "net/store_node.h"

namespace obiswap::net {

Status StoreNode::Store(SwapKey key, std::string text) {
  if (auto it = entries_.find(key); it != entries_.end()) {
    // Idempotent re-store: the bridge retries when a response envelope is
    // lost, so an identical (key, content) pair must succeed.
    if (it->second == text) return OkStatus();
    return AlreadyExistsError("key " + key.ToString() + " already stored");
  }
  if (used_bytes_ + text.size() > capacity_bytes_) {
    ++stats_.rejected_full;
    return ResourceExhaustedError("store full on device " +
                                  device_.ToString());
  }
  used_bytes_ += text.size();
  entries_.emplace(key, std::move(text));
  ++stats_.stores;
  return OkStatus();
}

Result<std::string> StoreNode::Fetch(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  ++stats_.fetches;
  return it->second;
}

Status StoreNode::Drop(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("key " + key.ToString() + " not stored");
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  ++stats_.drops;
  return OkStatus();
}

std::vector<SwapKey> StoreNode::Keys() const {
  std::vector<SwapKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, text] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace obiswap::net
