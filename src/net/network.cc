#include "net/network.h"

#include <algorithm>

#include "common/string_util.h"

namespace obiswap::net {

uint64_t Network::PairKey(DeviceId a, DeviceId b) {
  uint32_t lo = std::min(a.value(), b.value());
  uint32_t hi = std::max(a.value(), b.value());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

void Network::AddDevice(DeviceId device) { devices_.emplace(device, true); }

void Network::RemoveDevice(DeviceId device) {
  devices_.erase(device);
  outages_.erase(device);
  for (auto it = in_range_.begin(); it != in_range_.end();) {
    uint32_t lo = static_cast<uint32_t>(*it & 0xFFFFFFFF);
    uint32_t hi = static_cast<uint32_t>(*it >> 32);
    if (lo == device.value() || hi == device.value()) {
      it = in_range_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Network::HasDevice(DeviceId device) const {
  return devices_.count(device) > 0;
}

void Network::SetOnline(DeviceId device, bool online) {
  auto it = devices_.find(device);
  if (it != devices_.end()) it->second = online;
}

bool Network::IsOnline(DeviceId device) const {
  auto it = devices_.find(device);
  return it != devices_.end() && it->second && !InOutage(device);
}

void Network::AddOutage(DeviceId device, uint64_t start_us, uint64_t end_us) {
  if (end_us <= start_us) return;
  outages_[device].emplace_back(start_us, end_us);
}

void Network::FlapDevice(DeviceId device, uint64_t first_down_us,
                         uint64_t down_us, uint64_t period_us, int count) {
  for (int i = 0; i < count; ++i) {
    uint64_t start = first_down_us + static_cast<uint64_t>(i) * period_us;
    AddOutage(device, start, start + down_us);
  }
}

void Network::ClearOutages(DeviceId device) { outages_.erase(device); }

bool Network::InOutage(DeviceId device) const {
  auto it = outages_.find(device);
  if (it == outages_.end()) return false;
  uint64_t now = clock_.now_us();
  for (const auto& [start, end] : it->second) {
    if (now >= start && now < end) return true;
  }
  return false;
}

void Network::SetInRange(DeviceId a, DeviceId b, bool in_range) {
  if (in_range) {
    in_range_.insert(PairKey(a, b));
  } else {
    in_range_.erase(PairKey(a, b));
  }
}

bool Network::InRange(DeviceId a, DeviceId b) const {
  return in_range_.count(PairKey(a, b)) > 0;
}

void Network::SetLinkParams(DeviceId a, DeviceId b, LinkParams params) {
  link_params_[PairKey(a, b)] = params;
}

LinkParams Network::GetLinkParams(DeviceId a, DeviceId b) const {
  auto it = link_params_.find(PairKey(a, b));
  return it == link_params_.end() ? default_link_ : it->second;
}

Result<uint64_t> Network::Transfer(DeviceId from, DeviceId to, size_t bytes,
                                   uint64_t max_wait_us) {
  if (!IsOnline(from))
    return UnavailableError("device " + from.ToString() + " is offline");
  if (!IsOnline(to))
    return UnavailableError("device " + to.ToString() + " is offline");
  if (!InRange(from, to))
    return UnavailableError("devices " + from.ToString() + " and " +
                            to.ToString() + " are out of range");
  LinkParams link = GetLinkParams(from, to);
  if (link.loss_rate > 0.0 && rng_.NextBool(link.loss_rate)) {
    ++stats_.transfer_failures;
    // A lost attempt still consumes the latency window (capped: the caller
    // gives up waiting at its budget).
    uint64_t consumed = std::min(link.latency_us, max_wait_us);
    clock_.Advance(consumed);
    stats_.busy_us += consumed;
    if (consumed < link.latency_us)
      return DeadlineExceededError("transfer abandoned at wait budget");
    return UnavailableError("transfer lost on link");
  }
  uint64_t elapsed =
      link.latency_us +
      static_cast<uint64_t>(static_cast<double>(bytes) * 8.0 * 1e6 /
                            link.bandwidth_bps);
  if (elapsed > max_wait_us) {
    // The caller walks away at its budget; the partial transfer is wasted
    // link time, not delivered bytes.
    ++stats_.transfer_failures;
    clock_.Advance(max_wait_us);
    stats_.busy_us += max_wait_us;
    return DeadlineExceededError("transfer abandoned at wait budget");
  }
  clock_.Advance(elapsed);
  ++stats_.transfers;
  stats_.bytes_moved += bytes;
  stats_.busy_us += elapsed;
  return elapsed;
}

std::vector<DeviceId> Network::Reachable(DeviceId device) const {
  std::vector<DeviceId> out;
  if (!IsOnline(device)) return out;
  for (const auto& [other, online] : devices_) {
    if (other == device || !online) continue;
    if (InRange(device, other)) out.push_back(other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace obiswap::net
