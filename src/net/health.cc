#include "net/health.h"

#include <string>

namespace obiswap::net {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

HealthTracker::HealthTracker(const SimClock* clock, Options options)
    : clock_(clock), options_(options) {}

void HealthTracker::Transition(DeviceId device, StoreHealth& health,
                               BreakerState to) {
  BreakerState from = health.state;
  if (from == to) return;
  health.state = to;
  if (to == BreakerState::kOpen) {
    health.opened_at_us = now_us();
    health.probe_in_flight = false;
    ++health.opens;
    ++stats_.trips;
    if (telemetry_ != nullptr)
      telemetry_->metrics().GetCounter("breaker_opens").Increment();
  } else if (to == BreakerState::kClosed) {
    health.consecutive_failures = 0;
    health.probe_in_flight = false;
    ++stats_.closes;
    if (telemetry_ != nullptr)
      telemetry_->metrics().GetCounter("breaker_closes").Increment();
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .GetGauge("net.open_breakers")
        .Set(static_cast<int64_t>(open_count()));
    telemetry_->journal().Record(
        "degraded", "breaker-transition",
        "device=" + std::to_string(device.value()) + " " +
            BreakerStateName(from) + "->" + BreakerStateName(to));
  }
  if (observer_) observer_(device, from, to);
}

void HealthTracker::RecordOutcome(DeviceId device, bool ok,
                                  uint64_t latency_us) {
  StoreHealth& health = stores_[device];
  ++stats_.outcomes_recorded;
  double alpha = options_.ewma_alpha;
  double sample = ok ? 0.0 : 1.0;
  health.ewma_error_rate = health.attempts == 0
                               ? sample
                               : alpha * sample +
                                     (1.0 - alpha) * health.ewma_error_rate;
  ++health.attempts;
  if (ok) {
    ++health.successes;
    health.consecutive_failures = 0;
    health.ewma_latency_us =
        health.successes == 1
            ? static_cast<double>(latency_us)
            : alpha * static_cast<double>(latency_us) +
                  (1.0 - alpha) * health.ewma_latency_us;
    latency_.Record(latency_us);
    if (health.state == BreakerState::kHalfOpen)
      Transition(device, health, BreakerState::kClosed);
    else
      health.probe_in_flight = false;
    return;
  }
  ++health.failures;
  ++health.consecutive_failures;
  if (health.state == BreakerState::kHalfOpen) {
    // The recovery probe failed: back to open, cooldown restarts.
    Transition(device, health, BreakerState::kOpen);
    return;
  }
  if (health.state == BreakerState::kClosed &&
      (health.consecutive_failures >= options_.failure_trip_threshold ||
       (health.attempts >= options_.min_attempts_to_trip &&
        health.ewma_error_rate >= options_.error_rate_trip))) {
    Transition(device, health, BreakerState::kOpen);
  }
}

void HealthTracker::RecordPushback(DeviceId device) {
  ++stats_.pushbacks_recorded;
  auto it = stores_.find(device);
  if (it == stores_.end()) return;
  StoreHealth& health = it->second;
  // No failure streak, no EWMA sample, no latency: shed traffic must never
  // push a breaker toward open. But a pushback IS a transport success — the
  // store answered — so a half-open probe that got shed proves the store is
  // back and closes the breaker rather than leaving the probe dangling.
  if (health.state == BreakerState::kHalfOpen)
    Transition(device, health, BreakerState::kClosed);
  else
    health.probe_in_flight = false;
}

bool HealthTracker::AllowRequest(DeviceId device) {
  if (!options_.breakers_enabled) return true;
  auto it = stores_.find(device);
  if (it == stores_.end()) return true;
  StoreHealth& health = it->second;
  switch (health.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_us() - health.opened_at_us >= options_.open_cooldown_us) {
        Transition(device, health, BreakerState::kHalfOpen);
        health.probe_in_flight = true;
        ++stats_.probes;
        return true;
      }
      ++stats_.rejections;
      return false;
    case BreakerState::kHalfOpen:
      if (!health.probe_in_flight) {
        health.probe_in_flight = true;
        ++stats_.probes;
        return true;
      }
      ++stats_.rejections;
      return false;
  }
  return true;
}

bool HealthTracker::IsHealthy(DeviceId device) const {
  if (!options_.breakers_enabled) return true;
  auto it = stores_.find(device);
  if (it == stores_.end()) return true;
  return it->second.state == BreakerState::kClosed;
}

bool HealthTracker::IsOpen(DeviceId device) const {
  if (!options_.breakers_enabled) return false;
  auto it = stores_.find(device);
  if (it == stores_.end()) return false;
  return it->second.state == BreakerState::kOpen;
}

BreakerState HealthTracker::StateOf(DeviceId device) const {
  auto it = stores_.find(device);
  return it == stores_.end() ? BreakerState::kClosed : it->second.state;
}

const HealthTracker::StoreHealth* HealthTracker::Find(DeviceId device) const {
  auto it = stores_.find(device);
  return it == stores_.end() ? nullptr : &it->second;
}

size_t HealthTracker::open_count() const {
  size_t open = 0;
  for (const auto& [device, health] : stores_)
    if (health.state != BreakerState::kClosed) ++open;
  return open;
}

uint64_t HealthTracker::HedgeDeadlineUs() const {
  if (latency_.count() < options_.min_hedge_samples) return 0;
  return latency_.ValueAtPercentile(options_.hedge_percentile);
}

}  // namespace obiswap::net
