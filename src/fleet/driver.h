// FleetDriver: a fleet-scale simulation harness.
//
// Stands up hundreds-to-thousands of device runtimes — each a full
// middleware stack (runtime, swapping manager, placement directory,
// durability monitor) — against one shared store pool on one simulated
// network, so everything runs in a single deterministic virtual-time
// world. The driver scripts the paper's environment at fleet scale:
// swap-out/swap-in rounds across every device, correlated store outages
// (a building losing power, not one neighbor wandering off), and the
// recovery convergence that follows. It measures what the single-device
// benches cannot: aggregate swap throughput, placement balance across the
// pool (max/mean store fill), and the incremental durability monitor's
// scan savings versus the full-scan baseline.
//
// Determinism: store/device ids, round-robin cluster choice, ascending
// poll order and the greedy outage-victim selection are all fixed by the
// options; the only randomness is the network's seeded RNG, so one seed =
// one run, byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/store_node.h"

namespace obiswap::net {
class Network;
class Discovery;
class SimClock;
}  // namespace obiswap::net

namespace obiswap::fleet {

struct FleetOptions {
  size_t devices = 8;              ///< device runtimes in the fleet
  size_t stores = 16;              ///< shared store pool size
  int clusters_per_device = 4;     ///< swap-clusters built on each device
  int objects_per_cluster = 12;    ///< 64-byte list nodes per cluster
  size_t replication_factor = 2;   ///< K replicas per swapped cluster
  size_t store_capacity_bytes = 8 * 1024 * 1024;
  uint64_t poll_period_us = 250'000;  ///< durability poll cadence (4 Hz)
  int miss_threshold = 3;             ///< silent-departure detection window
  /// true: rendezvous directory placement + incremental monitor scans.
  /// false: the legacy nearby-store walk + full monitor scans (baseline).
  bool use_directory = true;
  uint64_t seed = 11;              ///< network RNG seed
  /// Client/producer-side overload controls: per-store retry budgets,
  /// priority annotation on every request, and AIMD pacing of the repair
  /// sweep and tier write-back. Store-side queues are configured
  /// separately (ConfigureStoreQueues) so setup traffic never queues.
  bool overload_controls = false;
};

/// Aggregate fleet metrics, summed across every device runtime.
struct FleetReport {
  uint64_t swap_outs = 0;
  uint64_t swap_ins = 0;
  uint64_t replicas_placed = 0;
  uint64_t fleet_placements = 0;   ///< replicas placed via the directory
  uint64_t replicas_lost = 0;
  uint64_t replicas_re_replicated = 0;
  uint64_t stores_departed = 0;    ///< departure detections (per monitor)
  uint64_t scan_replicas = 0;      ///< replica records monitors examined
  uint64_t full_scan_replicas = 0;  ///< what full scans would have examined
  uint64_t virtual_us = 0;         ///< simulation clock at snapshot time
  /// Placement balance over live stores: max entry count / mean entry
  /// count (1.0 = perfectly even; 0 when nothing is placed).
  double balance_max_over_mean = 0.0;
  size_t live_stores = 0;
  size_t clusters_below_k = 0;     ///< recoverable clusters still under K
  size_t clusters_lost = 0;        ///< swapped clusters with zero replicas
  /// Aggregate swap operations per virtual second.
  double swap_ops_per_s = 0.0;
  // --- overload accounting (all zero while the knobs are off) --------------
  uint64_t logical_calls = 0;      ///< StoreClient calls across the fleet
  uint64_t wire_attempts = 0;      ///< request envelopes actually sent
  uint64_t client_pushbacks = 0;   ///< shed responses clients received
  uint64_t client_pushbacks_by_class[net::kPriorityClasses] = {0, 0, 0, 0, 0};
  uint64_t retry_budget_exhausted = 0;
  uint64_t queue_wait_us = 0;      ///< store queueing delay charged to calls
  uint64_t max_queue_depth = 0;    ///< deepest store backlog observed
  uint64_t store_sheds = 0;        ///< store-side rejections (all stores)
  uint64_t store_sheds_by_class[net::kPriorityClasses] = {0, 0, 0, 0, 0};
  uint64_t repairs_paced = 0;      ///< sweep repairs deferred by AIMD caps
};

/// What one scripted recovery storm did (see RunRecoveryStorm).
struct StormReport {
  int polls = 0;                ///< storm polls executed
  uint64_t demand_faults = 0;   ///< demand swap-ins attempted during storm
  uint64_t demand_failures = 0;  ///< demand swap-ins that failed
  uint64_t total_stall_us = 0;  ///< summed demand stall (clock + queue wait)
  uint64_t p95_stall_us = 0;    ///< 95th-percentile demand stall
  uint64_t max_stall_us = 0;
};

/// One virtual-time fleet simulation. Build() wires the world; the
/// scripting calls below advance it. Not copyable; owns every runtime.
class FleetDriver {
 public:
  explicit FleetDriver(const FleetOptions& options);
  ~FleetDriver();
  FleetDriver(const FleetDriver&) = delete;
  FleetDriver& operator=(const FleetDriver&) = delete;

  /// Creates the network, the store pool and every device runtime, builds
  /// each device's clustered list, runs one fleet poll (populating the
  /// placement directories from discovery) and swaps every cluster out.
  Status Build();

  /// One activity round per call: every device swaps one of its clusters
  /// in and back out (round-robin over its clusters, offset by device so
  /// rounds interleave), then the clock advances one poll period and the
  /// whole fleet polls.
  Status RunRounds(int rounds);

  /// Advances the clock by one poll period and polls every device's
  /// durability monitor, in ascending device order.
  void PollAll();

  /// Silently kills `fraction` of the live store pool at once (network
  /// removal — monitors must detect the silence). Victims are chosen
  /// greedily, ascending, skipping any store whose death would destroy a
  /// cluster's last replica, so the scripted outage models a correlated
  /// failure the placement spread can actually survive. Returns the number
  /// of stores taken down.
  size_t InjectCorrelatedOutage(double fraction);

  /// Polls the fleet (advancing one poll period each time) until every
  /// cluster with a surviving replica is back at K replicas, or
  /// `max_polls` is exhausted (kDeadlineExceeded). Returns polls used.
  Result<int> RunUntilRecovered(int max_polls);

  /// Applies one bounded-queue configuration to every live store node.
  /// Called after Build()/steady-state rounds so setup traffic is never
  /// shed; the storm then runs against saturating stores.
  void ConfigureStoreQueues(const net::StoreNode::QueueOptions& queue);

  /// The recovery-storm script: for `polls` rounds, every device demand-
  /// faults one swapped cluster (and swaps it back out) while the monitors
  /// repair the outage underneath — demand traffic and repair traffic
  /// compete for the surviving stores. Each demand swap-in's stall is the
  /// virtual time it consumed plus the store queueing delay charged to the
  /// device's calls during it; the report carries the p95 over all
  /// samples. Demand failures (replicas still dead, budgets exhausted) are
  /// counted, not fatal — the storm is *supposed* to overload the pool.
  Result<StormReport> RunRecoveryStorm(int polls);

  FleetReport Report() const;

  size_t device_count() const;
  size_t store_count() const;
  /// The i-th store node (tests audit stored keys / fill directly).
  net::StoreNode* store_at(size_t i) const;
  net::SimClock& clock();

 private:
  struct DeviceWorld;

  void CollectClusterHealth(size_t* below_k, size_t* lost) const;

  FleetOptions options_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::Discovery> discovery_;
  std::vector<std::unique_ptr<net::StoreNode>> stores_;
  std::vector<bool> store_dead_;
  std::vector<std::unique_ptr<DeviceWorld>> devices_;
  int rounds_run_ = 0;
};

}  // namespace obiswap::fleet
