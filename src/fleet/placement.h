// Fleet placement directory: weighted rendezvous (HRW) hashing over the
// store fleet.
//
// The seed placement walked every reachable store "most-free-first" — O(S)
// per swap-out and, worse, a placement that changes whenever any store's
// free-byte count wiggles, so two devices (or one device across restarts)
// disagree about where a cluster's replicas belong. The directory replaces
// the walk with rendezvous hashing (Thaler & Ravishankar): each store s is
// scored against a placement key x as
//
//     score(s, x) = -weight(s) / ln(U(s, x)),   U in (0, 1)
//
// where U is a splitmix64-mixed hash of (store id, x) mapped into the unit
// interval. The K replica targets for x are the K highest-scoring healthy
// stores. Properties the swap layer leans on:
//
//  * deterministic — same fleet view (members, weights, health) → same
//    targets, on any device, across process restarts;
//  * weighted — a store with twice the weight (capacity) wins twice as
//    many keys in expectation (the -w/ln(U) form is exactly the weighted
//    rendezvous estimator);
//  * bounded rebalance — a store join/leave only moves the keys that store
//    wins/loses (~1/N of all keys per replica slot); every other key keeps
//    its full target set, so churn never triggers fleet-wide re-placement.
//
// The view is epoch-stamped: any membership/weight/health change bumps
// view_epoch(), letting callers cheaply detect "the fleet changed under
// me" without diffing member lists.
//
// Pure HRW is balls-in-bins: with R replicas over N stores the fullest
// store overshoots the mean by ~sqrt(ln N / (R/N)) sigma. LoadBound()
// supplies the bounded-load cap (ceil(c * mean), the consistent-hashing-
// with-bounded-loads rule): callers walk the rank order and defer stores
// at the cap to the back, which pins max/mean near c while keeping the
// order deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.h"

namespace obiswap::fleet {

class PlacementDirectory {
 public:
  struct Options {
    /// Bounded-load factor c: a store is deferred once it holds more than
    /// ceil(c * mean) placements. 1.2 keeps max/mean comfortably under the
    /// fleet_scale gate of 1.35 while rarely overriding pure HRW order.
    double load_bound_factor = 1.2;
    /// Floor for the cap so a near-empty fleet doesn't thrash placements
    /// over a bound of 1.
    uint64_t min_load_bound = 4;
  };

  struct Stats {
    uint64_t selections = 0;     ///< rank/target computations served
    uint64_t bounded_skips = 0;  ///< stores deferred at the load bound
    uint64_t joins = 0;          ///< stores added to the view
    uint64_t leaves = 0;         ///< stores removed from the view
  };

  PlacementDirectory() = default;
  explicit PlacementDirectory(const Options& options) : options_(options) {}

  /// Adds `store` with the given weight (> 0; clamped to 1e-6). Returns
  /// true if the view changed (new member, or weight changed for an
  /// existing one). New members start healthy.
  bool AddStore(DeviceId store, double weight = 1.0);
  bool RemoveStore(DeviceId store);
  /// Returns true (and bumps the epoch) only on an actual change.
  bool SetWeight(DeviceId store, double weight);
  bool SetHealthy(DeviceId store, bool healthy);

  bool Contains(DeviceId store) const { return stores_.count(store) != 0; }
  bool IsHealthy(DeviceId store) const;
  double WeightOf(DeviceId store) const;
  size_t size() const { return stores_.size(); }
  size_t healthy_count() const;
  /// All members, ascending by device id.
  std::vector<DeviceId> Stores() const;

  /// Monotonic view stamp: bumped on every membership/weight/health change.
  uint64_t view_epoch() const { return view_epoch_; }

  /// Placement key for one device's swap-cluster: mixes the owning device
  /// into the key so two devices' cluster #1 hash to unrelated stores.
  static uint64_t KeyFor(DeviceId self, SwapClusterId cluster);

  /// Full store preference order for `key`: healthy stores first, then
  /// unhealthy, each class by descending HRW score (ties by ascending
  /// device id). Deterministic for a given view.
  std::vector<DeviceId> RankAll(uint64_t key) const;

  /// The K-replica target set: the first min(k, size()) entries of
  /// RankAll(key).
  std::vector<DeviceId> Targets(uint64_t key, size_t k) const;

  /// Bounded-load cap for the current view: max(min_load_bound,
  /// ceil(load_bound_factor * total_load / live_stores)). `live_stores`
  /// of zero returns the floor.
  uint64_t LoadBound(uint64_t total_load, size_t live_stores) const;

  /// Stats hook for callers applying the load bound themselves.
  void NoteBoundedSkips(uint64_t skips) { stats_.bounded_skips += skips; }

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    double weight = 1.0;
    bool healthy = true;
  };

  // Ordered map: RankAll iterates members in ascending-id order, which
  // (with the explicit tie-break) keeps the rank deterministic regardless
  // of insertion order.
  std::map<DeviceId, Entry> stores_;
  uint64_t view_epoch_ = 0;
  Options options_;
  mutable Stats stats_;
};

}  // namespace obiswap::fleet
