#include "fleet/driver.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "context/events.h"
#include "fleet/placement.h"
#include "net/bridge.h"
#include "net/network.h"
#include "net/store_node.h"
#include "runtime/runtime.h"
#include "swap/durability.h"
#include "swap/manager.h"
#include "workload/list_workload.h"

namespace obiswap::fleet {

namespace {
// Store ids live far above device ids so the two ranges can never collide
// no matter how large the fleet grows.
constexpr uint32_t kStoreIdBase = 1'000'000;

swap::SwappingManager::Options ManagerOptions(const FleetOptions& options) {
  swap::SwappingManager::Options out;
  out.replication_factor = options.replication_factor;
  out.write_back_pacer.enabled = options.overload_controls;
  return out;
}
}  // namespace

/// One device's full middleware stack. Every world shares the driver's
/// network/discovery (one virtual clock, one store pool) but owns its
/// runtime, bus, manager, directory and monitor.
struct FleetDriver::DeviceWorld {
  DeviceWorld(net::Network& network, net::Discovery& discovery, DeviceId self,
              const FleetOptions& options)
      : id(self),
        rt(static_cast<uint16_t>(self.value())),
        client(network, discovery, self),
        manager(rt, ManagerOptions(options)) {
    manager.AttachStore(&client, &discovery);
    manager.AttachBus(&bus);
    if (options.overload_controls) {
      // Client-side storm damping: per-store retry budgets plus priority
      // stamping so priority-shedding stores can classify the traffic.
      net::StoreClient::RetryBudgetOptions budget;
      budget.enabled = true;
      client.set_retry_budget(budget);
      client.set_annotate_priority(true);
    }
    swap::DurabilityMonitor::Options monitor_options;
    monitor_options.miss_threshold = options.miss_threshold;
    monitor_options.repair_pacer.enabled = options.overload_controls;
    monitor = std::make_unique<swap::DurabilityMonitor>(
        manager, discovery, self, bus, nullptr, monitor_options);
    if (options.use_directory) {
      manager.AttachPlacementDirectory(&directory);
      monitor->AttachFleet(&directory);
    }
  }

  DeviceId id;
  runtime::Runtime rt;
  context::EventBus bus;
  net::StoreClient client;
  swap::SwappingManager manager;
  PlacementDirectory directory;
  std::unique_ptr<swap::DurabilityMonitor> monitor;
  std::vector<SwapClusterId> clusters;
};

FleetDriver::FleetDriver(const FleetOptions& options) : options_(options) {}
FleetDriver::~FleetDriver() = default;

Status FleetDriver::Build() {
  if (network_ != nullptr) return FailedPreconditionError("already built");
  if (options_.devices == 0 || options_.stores == 0)
    return InvalidArgumentError("need at least one device and one store");
  network_ = std::make_unique<net::Network>(options_.seed);
  discovery_ = std::make_unique<net::Discovery>(*network_);

  for (size_t i = 0; i < options_.stores; ++i) {
    DeviceId store_id(kStoreIdBase + static_cast<uint32_t>(i));
    network_->AddDevice(store_id);
    stores_.push_back(std::make_unique<net::StoreNode>(
        store_id, options_.store_capacity_bytes));
    store_dead_.push_back(false);
    discovery_->Announce(stores_.back().get());
  }

  const int objects =
      options_.clusters_per_device * options_.objects_per_cluster;
  for (size_t d = 0; d < options_.devices; ++d) {
    DeviceId device_id(static_cast<uint32_t>(d + 1));
    network_->AddDevice(device_id);
    for (const auto& store : stores_)
      network_->SetInRange(device_id, store->device(), true);
    devices_.push_back(std::make_unique<DeviceWorld>(*network_, *discovery_,
                                                     device_id, options_));
    DeviceWorld& world = *devices_.back();
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(world.rt);
    world.clusters =
        workload::BuildList(world.rt, &world.manager, cls, objects,
                            options_.objects_per_cluster, "head");
  }

  // One quiescent poll (no clock advance, nothing swapped yet) seeds every
  // directory from discovery before the first placement asks for targets.
  for (auto& world : devices_) world->monitor->Poll();
  for (auto& world : devices_) {
    for (SwapClusterId id : world->clusters)
      OBISWAP_RETURN_IF_ERROR(world->manager.SwapOut(id).status());
  }
  return OkStatus();
}

void FleetDriver::PollAll() {
  network_->clock().Advance(options_.poll_period_us);
  for (auto& world : devices_) world->monitor->Poll();
}

Status FleetDriver::RunRounds(int rounds) {
  if (network_ == nullptr) return FailedPreconditionError("Build() first");
  for (int r = 0; r < rounds; ++r) {
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceWorld& world = *devices_[d];
      if (world.clusters.empty()) continue;
      // Round-robin offset by device id so rounds interleave clusters
      // instead of the whole fleet hammering cluster 0 together.
      SwapClusterId cluster =
          world.clusters[(static_cast<size_t>(rounds_run_) + d) %
                         world.clusters.size()];
      if (world.manager.StateOf(cluster) == swap::SwapState::kSwapped)
        OBISWAP_RETURN_IF_ERROR(world.manager.SwapIn(cluster));
      OBISWAP_RETURN_IF_ERROR(world.manager.SwapOut(cluster).status());
    }
    PollAll();
    ++rounds_run_;
  }
  return OkStatus();
}

size_t FleetDriver::InjectCorrelatedOutage(double fraction) {
  if (network_ == nullptr || fraction <= 0.0) return 0;
  size_t live = 0;
  for (bool dead : store_dead_)
    if (!dead) ++live;
  size_t target = static_cast<size_t>(fraction * static_cast<double>(live) +
                                      0.5);
  if (target == 0) return 0;

  // Per-cluster replica store sets, plus a reverse store → clusters map so
  // the greedy pass only checks clusters the candidate actually backs.
  std::vector<std::vector<uint32_t>> cluster_stores;
  std::unordered_map<uint32_t, std::vector<size_t>> by_store;
  for (const auto& world : devices_) {
    for (SwapClusterId id : world->clusters) {
      const swap::SwapClusterInfo* info = world->manager.registry().Find(id);
      if (info == nullptr) continue;
      const std::vector<swap::ReplicaLocation>* active =
          info->ActiveReplicas();
      if (active == nullptr || active->empty()) continue;
      std::vector<uint32_t> holders;
      for (const swap::ReplicaLocation& replica : *active)
        holders.push_back(replica.device.value());
      size_t index = cluster_stores.size();
      for (uint32_t holder : holders) by_store[holder].push_back(index);
      cluster_stores.push_back(std::move(holders));
    }
  }

  std::unordered_set<uint32_t> killed;
  size_t taken = 0;
  for (size_t i = 0; i < stores_.size() && taken < target; ++i) {
    if (store_dead_[i]) continue;
    uint32_t candidate = stores_[i]->device().value();
    // Skip a victim whose death would take a cluster's *last* replica —
    // the scripted outage models correlated failure the placement spread
    // survives, so recovery convergence is a hard invariant, not luck.
    bool fatal = false;
    auto it = by_store.find(candidate);
    if (it != by_store.end()) {
      for (size_t index : it->second) {
        bool survivor = false;
        for (uint32_t holder : cluster_stores[index]) {
          if (holder != candidate && killed.count(holder) == 0) {
            survivor = true;
            break;
          }
        }
        if (!survivor) {
          fatal = true;
          break;
        }
      }
    }
    if (fatal) continue;
    killed.insert(candidate);
    network_->RemoveDevice(stores_[i]->device());
    store_dead_[i] = true;
    ++taken;
  }
  return taken;
}

void FleetDriver::CollectClusterHealth(size_t* below_k, size_t* lost) const {
  *below_k = 0;
  *lost = 0;
  const size_t want =
      options_.replication_factor == 0 ? 1 : options_.replication_factor;
  // Replica records pointing at a killed store are walking dead: the
  // registry still lists them until a monitor detects the silence, so
  // convergence counts only replicas on live stores — otherwise an outage
  // would look "recovered" before anyone even noticed it.
  std::unordered_set<uint32_t> dead;
  for (size_t i = 0; i < stores_.size(); ++i)
    if (store_dead_[i]) dead.insert(stores_[i]->device().value());
  for (const auto& world : devices_) {
    for (SwapClusterId id : world->clusters) {
      const swap::SwapClusterInfo* info = world->manager.registry().Find(id);
      if (info == nullptr) continue;
      const std::vector<swap::ReplicaLocation>* active =
          info->ActiveReplicas();
      size_t live = 0;
      if (active != nullptr) {
        for (const swap::ReplicaLocation& replica : *active)
          if (dead.count(replica.device.value()) == 0) ++live;
      }
      if (info->state == swap::SwapState::kSwapped && live == 0) {
        ++*lost;
        continue;
      }
      if (active != nullptr && !active->empty() && live < want) ++*below_k;
    }
  }
}

Result<int> FleetDriver::RunUntilRecovered(int max_polls) {
  if (network_ == nullptr) return FailedPreconditionError("Build() first");
  for (int polls = 0;; ++polls) {
    size_t below_k = 0;
    size_t lost = 0;
    CollectClusterHealth(&below_k, &lost);
    if (below_k == 0) return polls;
    if (polls >= max_polls) {
      return DeadlineExceededError(
          std::to_string(below_k) +
          " clusters still under K after " + std::to_string(max_polls) +
          " polls");
    }
    PollAll();
  }
}

void FleetDriver::ConfigureStoreQueues(
    const net::StoreNode::QueueOptions& queue) {
  for (size_t i = 0; i < stores_.size(); ++i) {
    if (store_dead_[i]) continue;
    stores_[i]->ConfigureQueue(queue);
  }
}

Result<StormReport> FleetDriver::RunRecoveryStorm(int polls) {
  if (network_ == nullptr) return FailedPreconditionError("Build() first");
  StormReport report;
  std::vector<uint64_t> stalls;
  for (int p = 0; p < polls; ++p) {
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceWorld& world = *devices_[d];
      if (world.clusters.empty()) continue;
      SwapClusterId cluster =
          world.clusters[(static_cast<size_t>(rounds_run_) + d) %
                         world.clusters.size()];
      if (world.manager.StateOf(cluster) != swap::SwapState::kSwapped)
        continue;
      // A demand fault's stall is what the application would feel: the
      // virtual time the swap-in consumed (transfers, backoff, retry-after
      // sleeps) plus the deterministic store queueing delay charged to the
      // device's calls during it (waiting callers do not block the shared
      // clock — see StoreNode::QueueOptions).
      const uint64_t clock_before = network_->clock().now_us();
      const uint64_t wait_before = world.client.stats().queue_wait_us;
      Status faulted = world.manager.SwapIn(cluster);
      ++report.demand_faults;
      const uint64_t stall =
          (network_->clock().now_us() - clock_before) +
          (world.client.stats().queue_wait_us - wait_before);
      stalls.push_back(stall);
      report.total_stall_us += stall;
      report.max_stall_us = std::max(report.max_stall_us, stall);
      if (!faulted.ok()) {
        ++report.demand_failures;
        continue;  // replicas still dead or budget-exhausted: storm goes on
      }
      Status out = world.manager.SwapOut(cluster).status();
      if (!out.ok()) ++report.demand_failures;
    }
    PollAll();
    ++rounds_run_;
    ++report.polls;
  }
  if (!stalls.empty()) {
    std::sort(stalls.begin(), stalls.end());
    size_t index = (stalls.size() * 95) / 100;
    if (index >= stalls.size()) index = stalls.size() - 1;
    report.p95_stall_us = stalls[index];
  }
  return report;
}

FleetReport FleetDriver::Report() const {
  FleetReport report;
  for (const auto& world : devices_) {
    const swap::SwappingManager::Stats& stats = world->manager.stats();
    report.swap_outs += stats.swap_outs;
    report.swap_ins += stats.swap_ins;
    report.replicas_placed += stats.replicas_placed;
    report.fleet_placements += stats.fleet_placements;
    report.replicas_lost += stats.replicas_forgotten;
    const swap::DurabilityMonitor::Stats& monitor_stats =
        world->monitor->stats();
    report.replicas_re_replicated += monitor_stats.replicas_re_replicated;
    report.stores_departed += monitor_stats.stores_departed;
    report.scan_replicas += monitor_stats.scan_replicas;
    report.full_scan_replicas += monitor_stats.full_scan_replicas;
    report.repairs_paced += monitor_stats.repairs_paced;
    const net::StoreClient::Stats& client_stats = world->client.stats();
    report.logical_calls += client_stats.calls;
    report.wire_attempts += client_stats.wire_attempts;
    report.client_pushbacks += client_stats.pushbacks;
    for (int c = 0; c < net::kPriorityClasses; ++c)
      report.client_pushbacks_by_class[c] +=
          client_stats.pushbacks_by_class[c];
    report.retry_budget_exhausted += client_stats.retry_budget_exhausted;
    report.queue_wait_us += client_stats.queue_wait_us;
    report.max_queue_depth =
        std::max(report.max_queue_depth, client_stats.max_store_queue_depth);
  }
  for (const auto& store : stores_) {
    const net::StoreNode::Stats& store_stats = store->stats();
    report.store_sheds += store_stats.shed_total;
    for (int c = 0; c < net::kPriorityClasses; ++c)
      report.store_sheds_by_class[c] += store_stats.shed_by_class[c];
    report.max_queue_depth =
        std::max(report.max_queue_depth, store_stats.max_queue_depth);
  }
  size_t max_entries = 0;
  uint64_t total_entries = 0;
  for (size_t i = 0; i < stores_.size(); ++i) {
    if (store_dead_[i]) continue;
    ++report.live_stores;
    size_t entries = stores_[i]->entry_count();
    total_entries += entries;
    max_entries = std::max(max_entries, entries);
  }
  if (report.live_stores > 0 && total_entries > 0) {
    double mean = static_cast<double>(total_entries) /
                  static_cast<double>(report.live_stores);
    report.balance_max_over_mean = static_cast<double>(max_entries) / mean;
  }
  CollectClusterHealth(&report.clusters_below_k, &report.clusters_lost);
  if (network_ != nullptr) {
    report.virtual_us = network_->clock().now_us();
    if (report.virtual_us > 0) {
      report.swap_ops_per_s =
          static_cast<double>(report.swap_outs + report.swap_ins) /
          (static_cast<double>(report.virtual_us) / 1e6);
    }
  }
  return report;
}

size_t FleetDriver::device_count() const { return devices_.size(); }
size_t FleetDriver::store_count() const { return stores_.size(); }
net::StoreNode* FleetDriver::store_at(size_t i) const {
  return i < stores_.size() ? stores_[i].get() : nullptr;
}
net::SimClock& FleetDriver::clock() { return network_->clock(); }

}  // namespace obiswap::fleet
