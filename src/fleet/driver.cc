#include "fleet/driver.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "context/events.h"
#include "fleet/placement.h"
#include "net/bridge.h"
#include "net/network.h"
#include "net/store_node.h"
#include "runtime/runtime.h"
#include "swap/durability.h"
#include "swap/manager.h"
#include "workload/list_workload.h"

namespace obiswap::fleet {

namespace {
// Store ids live far above device ids so the two ranges can never collide
// no matter how large the fleet grows.
constexpr uint32_t kStoreIdBase = 1'000'000;

swap::SwappingManager::Options ManagerOptions(const FleetOptions& options) {
  swap::SwappingManager::Options out;
  out.replication_factor = options.replication_factor;
  return out;
}
}  // namespace

/// One device's full middleware stack. Every world shares the driver's
/// network/discovery (one virtual clock, one store pool) but owns its
/// runtime, bus, manager, directory and monitor.
struct FleetDriver::DeviceWorld {
  DeviceWorld(net::Network& network, net::Discovery& discovery, DeviceId self,
              const FleetOptions& options)
      : id(self),
        rt(static_cast<uint16_t>(self.value())),
        client(network, discovery, self),
        manager(rt, ManagerOptions(options)) {
    manager.AttachStore(&client, &discovery);
    manager.AttachBus(&bus);
    swap::DurabilityMonitor::Options monitor_options;
    monitor_options.miss_threshold = options.miss_threshold;
    monitor = std::make_unique<swap::DurabilityMonitor>(
        manager, discovery, self, bus, nullptr, monitor_options);
    if (options.use_directory) {
      manager.AttachPlacementDirectory(&directory);
      monitor->AttachFleet(&directory);
    }
  }

  DeviceId id;
  runtime::Runtime rt;
  context::EventBus bus;
  net::StoreClient client;
  swap::SwappingManager manager;
  PlacementDirectory directory;
  std::unique_ptr<swap::DurabilityMonitor> monitor;
  std::vector<SwapClusterId> clusters;
};

FleetDriver::FleetDriver(const FleetOptions& options) : options_(options) {}
FleetDriver::~FleetDriver() = default;

Status FleetDriver::Build() {
  if (network_ != nullptr) return FailedPreconditionError("already built");
  if (options_.devices == 0 || options_.stores == 0)
    return InvalidArgumentError("need at least one device and one store");
  network_ = std::make_unique<net::Network>(options_.seed);
  discovery_ = std::make_unique<net::Discovery>(*network_);

  for (size_t i = 0; i < options_.stores; ++i) {
    DeviceId store_id(kStoreIdBase + static_cast<uint32_t>(i));
    network_->AddDevice(store_id);
    stores_.push_back(std::make_unique<net::StoreNode>(
        store_id, options_.store_capacity_bytes));
    store_dead_.push_back(false);
    discovery_->Announce(stores_.back().get());
  }

  const int objects =
      options_.clusters_per_device * options_.objects_per_cluster;
  for (size_t d = 0; d < options_.devices; ++d) {
    DeviceId device_id(static_cast<uint32_t>(d + 1));
    network_->AddDevice(device_id);
    for (const auto& store : stores_)
      network_->SetInRange(device_id, store->device(), true);
    devices_.push_back(std::make_unique<DeviceWorld>(*network_, *discovery_,
                                                     device_id, options_));
    DeviceWorld& world = *devices_.back();
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(world.rt);
    world.clusters =
        workload::BuildList(world.rt, &world.manager, cls, objects,
                            options_.objects_per_cluster, "head");
  }

  // One quiescent poll (no clock advance, nothing swapped yet) seeds every
  // directory from discovery before the first placement asks for targets.
  for (auto& world : devices_) world->monitor->Poll();
  for (auto& world : devices_) {
    for (SwapClusterId id : world->clusters)
      OBISWAP_RETURN_IF_ERROR(world->manager.SwapOut(id).status());
  }
  return OkStatus();
}

void FleetDriver::PollAll() {
  network_->clock().Advance(options_.poll_period_us);
  for (auto& world : devices_) world->monitor->Poll();
}

Status FleetDriver::RunRounds(int rounds) {
  if (network_ == nullptr) return FailedPreconditionError("Build() first");
  for (int r = 0; r < rounds; ++r) {
    for (size_t d = 0; d < devices_.size(); ++d) {
      DeviceWorld& world = *devices_[d];
      if (world.clusters.empty()) continue;
      // Round-robin offset by device id so rounds interleave clusters
      // instead of the whole fleet hammering cluster 0 together.
      SwapClusterId cluster =
          world.clusters[(static_cast<size_t>(rounds_run_) + d) %
                         world.clusters.size()];
      if (world.manager.StateOf(cluster) == swap::SwapState::kSwapped)
        OBISWAP_RETURN_IF_ERROR(world.manager.SwapIn(cluster));
      OBISWAP_RETURN_IF_ERROR(world.manager.SwapOut(cluster).status());
    }
    PollAll();
    ++rounds_run_;
  }
  return OkStatus();
}

size_t FleetDriver::InjectCorrelatedOutage(double fraction) {
  if (network_ == nullptr || fraction <= 0.0) return 0;
  size_t live = 0;
  for (bool dead : store_dead_)
    if (!dead) ++live;
  size_t target = static_cast<size_t>(fraction * static_cast<double>(live) +
                                      0.5);
  if (target == 0) return 0;

  // Per-cluster replica store sets, plus a reverse store → clusters map so
  // the greedy pass only checks clusters the candidate actually backs.
  std::vector<std::vector<uint32_t>> cluster_stores;
  std::unordered_map<uint32_t, std::vector<size_t>> by_store;
  for (const auto& world : devices_) {
    for (SwapClusterId id : world->clusters) {
      const swap::SwapClusterInfo* info = world->manager.registry().Find(id);
      if (info == nullptr) continue;
      const std::vector<swap::ReplicaLocation>* active =
          info->ActiveReplicas();
      if (active == nullptr || active->empty()) continue;
      std::vector<uint32_t> holders;
      for (const swap::ReplicaLocation& replica : *active)
        holders.push_back(replica.device.value());
      size_t index = cluster_stores.size();
      for (uint32_t holder : holders) by_store[holder].push_back(index);
      cluster_stores.push_back(std::move(holders));
    }
  }

  std::unordered_set<uint32_t> killed;
  size_t taken = 0;
  for (size_t i = 0; i < stores_.size() && taken < target; ++i) {
    if (store_dead_[i]) continue;
    uint32_t candidate = stores_[i]->device().value();
    // Skip a victim whose death would take a cluster's *last* replica —
    // the scripted outage models correlated failure the placement spread
    // survives, so recovery convergence is a hard invariant, not luck.
    bool fatal = false;
    auto it = by_store.find(candidate);
    if (it != by_store.end()) {
      for (size_t index : it->second) {
        bool survivor = false;
        for (uint32_t holder : cluster_stores[index]) {
          if (holder != candidate && killed.count(holder) == 0) {
            survivor = true;
            break;
          }
        }
        if (!survivor) {
          fatal = true;
          break;
        }
      }
    }
    if (fatal) continue;
    killed.insert(candidate);
    network_->RemoveDevice(stores_[i]->device());
    store_dead_[i] = true;
    ++taken;
  }
  return taken;
}

void FleetDriver::CollectClusterHealth(size_t* below_k, size_t* lost) const {
  *below_k = 0;
  *lost = 0;
  const size_t want =
      options_.replication_factor == 0 ? 1 : options_.replication_factor;
  // Replica records pointing at a killed store are walking dead: the
  // registry still lists them until a monitor detects the silence, so
  // convergence counts only replicas on live stores — otherwise an outage
  // would look "recovered" before anyone even noticed it.
  std::unordered_set<uint32_t> dead;
  for (size_t i = 0; i < stores_.size(); ++i)
    if (store_dead_[i]) dead.insert(stores_[i]->device().value());
  for (const auto& world : devices_) {
    for (SwapClusterId id : world->clusters) {
      const swap::SwapClusterInfo* info = world->manager.registry().Find(id);
      if (info == nullptr) continue;
      const std::vector<swap::ReplicaLocation>* active =
          info->ActiveReplicas();
      size_t live = 0;
      if (active != nullptr) {
        for (const swap::ReplicaLocation& replica : *active)
          if (dead.count(replica.device.value()) == 0) ++live;
      }
      if (info->state == swap::SwapState::kSwapped && live == 0) {
        ++*lost;
        continue;
      }
      if (active != nullptr && !active->empty() && live < want) ++*below_k;
    }
  }
}

Result<int> FleetDriver::RunUntilRecovered(int max_polls) {
  if (network_ == nullptr) return FailedPreconditionError("Build() first");
  for (int polls = 0;; ++polls) {
    size_t below_k = 0;
    size_t lost = 0;
    CollectClusterHealth(&below_k, &lost);
    if (below_k == 0) return polls;
    if (polls >= max_polls) {
      return DeadlineExceededError(
          std::to_string(below_k) +
          " clusters still under K after " + std::to_string(max_polls) +
          " polls");
    }
    PollAll();
  }
}

FleetReport FleetDriver::Report() const {
  FleetReport report;
  for (const auto& world : devices_) {
    const swap::SwappingManager::Stats& stats = world->manager.stats();
    report.swap_outs += stats.swap_outs;
    report.swap_ins += stats.swap_ins;
    report.replicas_placed += stats.replicas_placed;
    report.fleet_placements += stats.fleet_placements;
    report.replicas_lost += stats.replicas_forgotten;
    const swap::DurabilityMonitor::Stats& monitor_stats =
        world->monitor->stats();
    report.replicas_re_replicated += monitor_stats.replicas_re_replicated;
    report.stores_departed += monitor_stats.stores_departed;
    report.scan_replicas += monitor_stats.scan_replicas;
    report.full_scan_replicas += monitor_stats.full_scan_replicas;
  }
  size_t max_entries = 0;
  uint64_t total_entries = 0;
  for (size_t i = 0; i < stores_.size(); ++i) {
    if (store_dead_[i]) continue;
    ++report.live_stores;
    size_t entries = stores_[i]->entry_count();
    total_entries += entries;
    max_entries = std::max(max_entries, entries);
  }
  if (report.live_stores > 0 && total_entries > 0) {
    double mean = static_cast<double>(total_entries) /
                  static_cast<double>(report.live_stores);
    report.balance_max_over_mean = static_cast<double>(max_entries) / mean;
  }
  CollectClusterHealth(&report.clusters_below_k, &report.clusters_lost);
  if (network_ != nullptr) {
    report.virtual_us = network_->clock().now_us();
    if (report.virtual_us > 0) {
      report.swap_ops_per_s =
          static_cast<double>(report.swap_outs + report.swap_ins) /
          (static_cast<double>(report.virtual_us) / 1e6);
    }
  }
  return report;
}

size_t FleetDriver::device_count() const { return devices_.size(); }
size_t FleetDriver::store_count() const { return stores_.size(); }
net::StoreNode* FleetDriver::store_at(size_t i) const {
  return i < stores_.size() ? stores_[i].get() : nullptr;
}
net::SimClock& FleetDriver::clock() { return network_->clock(); }

}  // namespace obiswap::fleet
