#include "fleet/placement.h"

#include <algorithm>
#include <cmath>

namespace obiswap::fleet {
namespace {

// splitmix64 finalizer: the same avalanche mixer the net layer uses for
// retry jitter. Full-period, cheap, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Hash of (store, key) mapped into (0, 1): the top 53 bits make an exact
// double in [0, 1); the +1/2^54 offset keeps it strictly positive so
// ln(U) below is finite.
double UnitHash(DeviceId store, uint64_t key) {
  uint64_t h = Mix64(Mix64(static_cast<uint64_t>(store.value()) ^
                           0xA24BAED4963EE407ull) ^
                     key);
  return (static_cast<double>(h >> 11) + 0.5) * (1.0 / 9007199254740992.0);
}

// Weighted rendezvous score: -w / ln(U). Monotone in U, so the argmax over
// stores is the weighted-HRW winner (Thaler & Ravishankar §4).
double Score(DeviceId store, double weight, uint64_t key) {
  return -weight / std::log(UnitHash(store, key));
}

}  // namespace

bool PlacementDirectory::AddStore(DeviceId store, double weight) {
  weight = std::max(weight, 1e-6);
  auto [it, inserted] = stores_.try_emplace(store, Entry{weight, true});
  if (inserted) {
    ++stats_.joins;
    ++view_epoch_;
    return true;
  }
  if (it->second.weight != weight) {
    it->second.weight = weight;
    ++view_epoch_;
    return true;
  }
  return false;
}

bool PlacementDirectory::RemoveStore(DeviceId store) {
  if (stores_.erase(store) == 0) return false;
  ++stats_.leaves;
  ++view_epoch_;
  return true;
}

bool PlacementDirectory::SetWeight(DeviceId store, double weight) {
  weight = std::max(weight, 1e-6);
  auto it = stores_.find(store);
  if (it == stores_.end() || it->second.weight == weight) return false;
  it->second.weight = weight;
  ++view_epoch_;
  return true;
}

bool PlacementDirectory::SetHealthy(DeviceId store, bool healthy) {
  auto it = stores_.find(store);
  if (it == stores_.end() || it->second.healthy == healthy) return false;
  it->second.healthy = healthy;
  ++view_epoch_;
  return true;
}

bool PlacementDirectory::IsHealthy(DeviceId store) const {
  auto it = stores_.find(store);
  return it != stores_.end() && it->second.healthy;
}

double PlacementDirectory::WeightOf(DeviceId store) const {
  auto it = stores_.find(store);
  return it == stores_.end() ? 0.0 : it->second.weight;
}

size_t PlacementDirectory::healthy_count() const {
  size_t n = 0;
  for (const auto& [store, entry] : stores_) {
    if (entry.healthy) ++n;
  }
  return n;
}

std::vector<DeviceId> PlacementDirectory::Stores() const {
  std::vector<DeviceId> out;
  out.reserve(stores_.size());
  for (const auto& [store, entry] : stores_) out.push_back(store);
  return out;
}

uint64_t PlacementDirectory::KeyFor(DeviceId self, SwapClusterId cluster) {
  return Mix64((static_cast<uint64_t>(self.value()) << 32) ^
               static_cast<uint64_t>(cluster.value()));
}

std::vector<DeviceId> PlacementDirectory::RankAll(uint64_t key) const {
  struct Ranked {
    DeviceId store;
    bool healthy;
    double score;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(stores_.size());
  for (const auto& [store, entry] : stores_) {
    ranked.push_back({store, entry.healthy, Score(store, entry.weight, key)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.healthy != b.healthy) return a.healthy;
    if (a.score != b.score) return a.score > b.score;
    return a.store < b.store;
  });
  ++stats_.selections;
  std::vector<DeviceId> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(r.store);
  return out;
}

std::vector<DeviceId> PlacementDirectory::Targets(uint64_t key,
                                                  size_t k) const {
  std::vector<DeviceId> order = RankAll(key);
  if (order.size() > k) order.resize(k);
  return order;
}

uint64_t PlacementDirectory::LoadBound(uint64_t total_load,
                                       size_t live_stores) const {
  if (live_stores == 0) return options_.min_load_bound;
  double mean = static_cast<double>(total_load) / live_stores;
  uint64_t bound =
      static_cast<uint64_t>(std::ceil(options_.load_bound_factor * mean));
  return std::max(bound, options_.min_load_bound);
}

}  // namespace obiswap::fleet
