#include "telemetry/telemetry.h"

namespace obiswap::telemetry {

Telemetry::Telemetry(const Options& options)
    : tracer_(options.tracer_capacity), journal_(options.journal_capacity) {
  tracer_.SetCompletedSink([this](const SpanTracer::CompletedSpan& span) {
    journal_.Record("span", span.name,
                    "cat=" + span.category +
                        " start_us=" + std::to_string(span.start_us) +
                        " dur_us=" + std::to_string(span.dur_us));
  });
}

void Telemetry::AttachClock(const net::SimClock* clock) {
  clock_ = clock;
  tracer_.AttachClock(clock);
  journal_.AttachClock(clock);
}

void Telemetry::set_enabled(bool enabled) {
  enabled_ = enabled;
  tracer_.set_enabled(enabled);
  journal_.set_enabled(enabled);
}

Status Telemetry::DumpTrace(const std::string& path) const {
  if (!tracer_.WriteChromeTrace(path)) {
    return InternalError("failed to write trace to " + path);
  }
  return Status::Ok();
}

ScopedSpan::ScopedSpan(Telemetry* telemetry, std::string_view name,
                       std::string_view category, Histogram* histogram)
    : telemetry_(telemetry), histogram_(histogram) {
  if (telemetry_ == nullptr || !telemetry_->enabled()) {
    telemetry_ = nullptr;
    return;
  }
  start_us_ = telemetry_->now_us();
  token_ = telemetry_->tracer().Begin(name, category);
}

void ScopedSpan::Close() {
  if (telemetry_ == nullptr) return;
  telemetry_->tracer().End(token_);
  if (histogram_ != nullptr) {
    const uint64_t end_us = telemetry_->now_us();
    histogram_->Record(end_us >= start_us_ ? end_us - start_us_ : 0);
  }
  telemetry_ = nullptr;
}

}  // namespace obiswap::telemetry
