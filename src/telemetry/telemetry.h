// Telemetry: the bundle a middleware instance carries — one MetricsRegistry,
// one SpanTracer, one EventJournal, sharing a virtual clock and a master
// enable switch.
//
// The bundle owns no policy about *what* gets recorded; layers hold a
// Telemetry* and instrument themselves (ScopedSpan for paired begin/end,
// registry references for counters). Completed spans are mirrored into the
// journal automatically so a post-mortem dump interleaves bus events with
// the spans that surrounded them.
//
// Telemetry depends only on common/ (SimClock is header-only), so every
// layer — net, swap, prefetch, policy — can link it without cycles.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "net/sim_clock.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace obiswap::telemetry {

class Telemetry {
 public:
  struct Options {
    size_t tracer_capacity = 8192;
    size_t journal_capacity = 256;
  };

  Telemetry() : Telemetry(Options{}) {}
  explicit Telemetry(const Options& options);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }
  EventJournal& journal() { return journal_; }
  const EventJournal& journal() const { return journal_; }

  void AttachClock(const net::SimClock* clock);
  const net::SimClock* clock() const { return clock_; }
  uint64_t now_us() const { return clock_ == nullptr ? 0 : clock_->now_us(); }

  /// Master switch: off stops span recording and journal entries. Metric
  /// cells stay writable (callers bump references they already hold), so
  /// stats output is identical either way — see the parity test.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  /// Exports the tracer's retained spans as Chrome trace_event JSON at
  /// `path`.
  Status DumpTrace(const std::string& path) const;

 private:
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  EventJournal journal_;
  const net::SimClock* clock_ = nullptr;
  bool enabled_ = true;
};

/// RAII span: opens on construction, closes (and optionally records the
/// duration into a histogram) on Close()/destruction. Everything is a no-op
/// when `telemetry` is null or disabled, so call sites stay unconditional:
///
///   ScopedSpan span(telemetry_, "swap_out", "swap",
///                   Hist(telemetry_, "swap_out_us"));
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, std::string_view name,
             std::string_view category, Histogram* histogram = nullptr);
  ~ScopedSpan() { Close(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Idempotent early close — ends the span and records the histogram
  /// sample now instead of at scope exit.
  void Close();

 private:
  Telemetry* telemetry_;
  Histogram* histogram_;
  SpanTracer::SpanToken token_ = SpanTracer::kInvalidSpan;
  uint64_t start_us_ = 0;
};

/// Histogram lookup that tolerates a null bundle — pairs with ScopedSpan.
inline Histogram* Hist(Telemetry* telemetry, std::string_view name) {
  return telemetry == nullptr ? nullptr
                              : &telemetry->metrics().GetHistogram(name);
}

}  // namespace obiswap::telemetry
