// MetricsRegistry: named counters, gauges, and fixed-log2-bucket latency
// histograms for the swap pipeline.
//
// The paper's evaluation (§5) lives on per-phase timing over a slow link;
// the reproduction's perf claims need the same attribution. Counters and
// gauges are plain uint64 cells behind stable references — a hot path looks
// a metric up once and bumps it for the price of an increment. Histograms
// use 65 fixed power-of-two buckets (bucket 0 holds exact zeros, bucket i
// holds [2^(i-1), 2^i - 1]), so recording is a branch and a bit-scan, and
// p50/p95/p99 come out of a cumulative walk at export time. Everything is
// deterministic: same workload, same virtual clock, same numbers.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace obiswap::telemetry {

/// Monotonic event count. Set() exists for layers that keep their own
/// struct-of-uint64 stats hot and sync them into the registry at export
/// time (SwappingManager::StatsSnapshot does exactly that).
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  void Set(uint64_t value) { value_ = value; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time signed level (queue depth, free bytes, churn score).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Fixed-log2-bucket histogram over uint64 samples (latencies in virtual
/// microseconds, payload sizes in bytes). Exact min/max/sum/count are kept
/// alongside the buckets; percentiles resolve to the upper bound of the
/// bucket containing the requested rank.
class Histogram {
 public:
  /// Bucket 0: value 0. Bucket i (1..64): [2^(i-1), 2^i - 1].
  static constexpr size_t kBucketCount = 65;

  /// The bucket a value lands in: 0 for 0, else 1 + floor(log2(value)).
  static size_t BucketIndex(uint64_t value);
  /// Largest value bucket `index` can hold (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t value);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Exact extremes of the recorded samples; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(size_t index) const { return buckets_[index]; }

  /// Upper bound of the bucket holding the sample at rank
  /// ceil(percentile/100 * count); 0 when empty. `percentile` in (0, 100].
  uint64_t ValueAtPercentile(double percentile) const;

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Name → metric directory. Get* creates on first use and returns a stable
/// reference (storage is a deque; nothing moves on growth). Iteration and
/// JSON export follow registration order, so exports are deterministic.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Lookup without creation; nullptr if the metric was never touched.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  template <typename Fn>  // Fn(const std::string& name, const Counter&)
  void ForEachCounter(Fn fn) const {
    for (const auto& [name, metric] : counters_) fn(name, metric);
  }
  template <typename Fn>
  void ForEachGauge(Fn fn) const {
    for (const auto& [name, metric] : gauges_) fn(name, metric);
  }
  template <typename Fn>
  void ForEachHistogram(Fn fn) const {
    for (const auto& [name, metric] : histograms_) fn(name, metric);
  }

  /// Everything, as one JSON object: {"counters":{..},"gauges":{..},
  /// "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  /// "p50":..,"p95":..,"p99":..},..}}. Keys in registration order.
  std::string Json() const;

 private:
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::unordered_map<std::string_view, Counter*> counter_index_;
  std::unordered_map<std::string_view, Gauge*> gauge_index_;
  std::unordered_map<std::string_view, Histogram*> histogram_index_;
};

}  // namespace obiswap::telemetry
