// SpanTracer: nested spans stamped from the virtual clock, exported as
// Chrome trace_event JSON.
//
// Every swap-out phase, swap-in attempt, store RPC, and re-replication
// records a span; because timestamps come from the same SimClock the
// simulated network advances, a bench run traced twice produces the same
// bytes, and a whole run opens in chrome://tracing or Perfetto with the
// per-phase latency attribution the paper's §5 tables are built on.
//
// Storage is a preallocated ring of completed spans — recording is O(1) and
// never allocates past the ring's capacity (span names are small strings;
// slots are reused in place after the first lap). When the ring is full the
// oldest span is dropped and counted, so the tracer is safe to leave on
// under an unbounded workload.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/sim_clock.h"

namespace obiswap::telemetry {

class SpanTracer {
 public:
  /// A closed span. `track` maps to the Chrome trace "tid", so each bench
  /// configuration can get its own named row (BeginTrack); `depth` is the
  /// nesting level at open time.
  struct CompletedSpan {
    std::string name;
    std::string category;
    uint64_t start_us = 0;
    uint64_t dur_us = 0;
    uint32_t track = 1;
    uint32_t depth = 0;
  };

  /// Handle for End(); 0 is never a live span.
  using SpanToken = uint64_t;
  static constexpr SpanToken kInvalidSpan = 0;

  explicit SpanTracer(size_t capacity = 8192);

  /// Virtual time source; without one every span is stamped 0 (the trace
  /// is still structurally valid, just flat).
  void AttachClock(const net::SimClock* clock) { clock_ = clock; }
  uint64_t now_us() const { return clock_ == nullptr ? 0 : clock_->now_us(); }

  /// Disabled: Begin returns kInvalidSpan and nothing records.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Opens a nested span. Spans close in LIFO order; End() of an outer
  /// token implicitly closes anything still open above it.
  SpanToken Begin(std::string_view name, std::string_view category);
  /// Closes `token` (and any spans nested inside it that were left open —
  /// each counted in unbalanced_closes). A token that is not open (already
  /// closed, kInvalidSpan, or from a disabled period) is a counted no-op.
  void End(SpanToken token);

  /// Starts a new trace track: subsequent spans carry a fresh tid, labeled
  /// `label` via trace metadata. Benches call this per configuration so
  /// sweeps render as parallel named rows instead of overlapping times.
  void BeginTrack(std::string_view label);

  size_t capacity() const { return capacity_; }
  size_t completed_count() const { return size_; }
  uint64_t dropped_count() const { return dropped_; }
  uint64_t unbalanced_closes() const { return unbalanced_; }
  size_t open_depth() const { return open_.size(); }
  /// Oldest-first access to the retained spans; index < completed_count().
  const CompletedSpan& completed(size_t index) const;

  /// Mirror for the event journal: called (synchronously) for every span
  /// that completes, before it enters the ring.
  using CompletedSink = std::function<void(const CompletedSpan&)>;
  void SetCompletedSink(CompletedSink sink) { sink_ = std::move(sink); }

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — "M" thread-name
  /// metadata per track, then one "X" complete event per retained span,
  /// oldest first. Timestamps are virtual microseconds.
  std::string ToChromeTraceJson() const;
  /// Writes ToChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops retained and open spans (counters survive).
  void Clear();

 private:
  struct OpenSpan {
    SpanToken token;
    std::string name;
    std::string category;
    uint64_t start_us;
    uint32_t track;
    uint32_t depth;
  };

  void Complete(OpenSpan& span, uint64_t end_us);

  const net::SimClock* clock_ = nullptr;
  bool enabled_ = true;
  size_t capacity_;
  /// Fixed-size ring; ring_[(head_ + i) % capacity_] is the i-th oldest.
  std::vector<CompletedSpan> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
  uint64_t unbalanced_ = 0;
  SpanToken next_token_ = 1;
  std::vector<OpenSpan> open_;
  std::vector<std::pair<uint32_t, std::string>> tracks_;
  uint32_t track_ = 1;
  CompletedSink sink_;
};

}  // namespace obiswap::telemetry
