#include "telemetry/metrics.h"

#include <cmath>

namespace obiswap::telemetry {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  // 1 + floor(log2(value)): value 1 → bucket 1, 2..3 → 2, 2^k.. → k+1,
  // UINT64_MAX → 64.
  size_t index = 0;
  while (value != 0) {
    value >>= 1;
    ++index;
  }
  return index;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= kBucketCount - 1) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

uint64_t Histogram::ValueAtPercentile(double percentile) const {
  if (count_ == 0) return 0;
  if (percentile <= 0.0) return min();
  if (percentile > 100.0) percentile = 100.0;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(percentile / 100.0 *
                                      static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return max_;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back(std::string(name), Counter());
  auto& entry = counters_.back();
  counter_index_.emplace(entry.first, &entry.second);
  return entry.second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back(std::string(name), Gauge());
  auto& entry = gauges_.back();
  gauge_index_.emplace(entry.first, &entry.second);
  return entry.second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(std::string(name), Histogram());
  auto& entry = histograms_.back();
  histogram_index_.emplace(entry.first, &entry.second);
  return entry.second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? nullptr : it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? nullptr : it->second;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : it->second;
}

namespace {
// Metric names are identifiers; only quotes/backslashes could upset JSON.
std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}
}  // namespace

std::string MetricsRegistry::Json() const {
  std::string json = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(name) + "\":" + std::to_string(counter.value());
  }
  json += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(name) + "\":" + std::to_string(gauge.value());
  }
  json += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(name) + "\":{\"count\":" +
            std::to_string(histogram.count()) +
            ",\"sum\":" + std::to_string(histogram.sum()) +
            ",\"min\":" + std::to_string(histogram.min()) +
            ",\"max\":" + std::to_string(histogram.max()) +
            ",\"p50\":" + std::to_string(histogram.ValueAtPercentile(50)) +
            ",\"p95\":" + std::to_string(histogram.ValueAtPercentile(95)) +
            ",\"p99\":" + std::to_string(histogram.ValueAtPercentile(99)) +
            "}";
  }
  json += "}}";
  return json;
}

}  // namespace obiswap::telemetry
