// EventJournal: a bounded ring buffer of recent middleware activity for
// post-mortem dumps.
//
// Chaos and churn tests fail long after the interesting moment; the flat
// counter dump says *what* went wrong, never *in what order*. The journal
// keeps the last N entries — EventBus traffic mirrored by the swapping
// manager, completed tracer spans, and anything a layer cares to Record —
// each stamped from the virtual clock, so a failing test can print an
// ordered reconstruction of its final seconds.
//
// Storage is preallocated: a fixed vector of entries whose strings are
// reassigned in place after the first lap, so steady-state recording is
// O(1) per event with no allocation beyond string reuse. Recording from
// inside an EventBus handler (including one triggered by a journal
// subscriber publishing further events) is safe — Record only touches the
// ring.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/sim_clock.h"

namespace obiswap::telemetry {

class EventJournal {
 public:
  struct Entry {
    uint64_t seq = 0;    ///< 1-based position in the full recorded stream
    uint64_t ts_us = 0;  ///< virtual clock at record time (0 without clock)
    std::string kind;    ///< "event", "span", or a caller-chosen tag
    std::string what;    ///< event type / span name
    std::string detail;  ///< rendered properties, sorted keys
  };

  explicit EventJournal(size_t capacity = 256);

  void AttachClock(const net::SimClock* clock) { clock_ = clock; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(std::string_view kind, std::string_view what,
              std::string_view detail);

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  /// Entries ever recorded, including the ones the ring has since dropped.
  uint64_t total_recorded() const { return seq_; }

  /// Oldest-first access to the retained entries; index < size().
  const Entry& entry(size_t index) const;

  template <typename Fn>  // Fn(const Entry&), oldest first
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < size_; ++i) fn(entry(i));
  }

  /// Human-readable dump, oldest first, one line per entry:
  ///   #seq @ts_us [kind] what {detail}
  std::string Dump() const;

  void Clear();

 private:
  const net::SimClock* clock_ = nullptr;
  bool enabled_ = true;
  size_t capacity_;
  std::vector<Entry> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace obiswap::telemetry
