#include "telemetry/tracer.h"

#include <cstdio>

namespace obiswap::telemetry {

SpanTracer::SpanTracer(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.resize(capacity_);
  open_.reserve(16);
}

SpanTracer::SpanToken SpanTracer::Begin(std::string_view name,
                                        std::string_view category) {
  if (!enabled_) return kInvalidSpan;
  SpanToken token = next_token_++;
  open_.push_back(OpenSpan{token, std::string(name), std::string(category),
                           now_us(), track_,
                           static_cast<uint32_t>(open_.size())});
  return token;
}

void SpanTracer::End(SpanToken token) {
  if (token == kInvalidSpan) return;
  size_t at = open_.size();
  while (at > 0 && open_[at - 1].token != token) --at;
  if (at == 0) {
    // Not open: double close, or opened while the tracer was disabled.
    ++unbalanced_;
    return;
  }
  const uint64_t end_us = now_us();
  // Anything still open above `token` was leaked by its opener; close it at
  // the same instant so the trace stays well-nested.
  while (open_.size() > at) {
    ++unbalanced_;
    Complete(open_.back(), end_us);
    open_.pop_back();
  }
  Complete(open_.back(), end_us);
  open_.pop_back();
}

void SpanTracer::Complete(OpenSpan& span, uint64_t end_us) {
  CompletedSpan completed;
  completed.name = std::move(span.name);
  completed.category = std::move(span.category);
  completed.start_us = span.start_us;
  completed.dur_us = end_us >= span.start_us ? end_us - span.start_us : 0;
  completed.track = span.track;
  completed.depth = span.depth;
  if (sink_) sink_(completed);
  size_t slot;
  if (size_ < capacity_) {
    slot = (head_ + size_) % capacity_;
    ++size_;
  } else {
    slot = head_;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  ring_[slot] = std::move(completed);
}

void SpanTracer::BeginTrack(std::string_view label) {
  if (!enabled_) return;
  ++track_;
  tracks_.emplace_back(track_, std::string(label));
}

const SpanTracer::CompletedSpan& SpanTracer::completed(size_t index) const {
  return ring_[(head_ + index) % capacity_];
}

void SpanTracer::Clear() {
  head_ = 0;
  size_ = 0;
  open_.clear();
}

namespace {
std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}
}  // namespace

std::string SpanTracer::ToChromeTraceJson() const {
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) json += ",";
    first = false;
    json += event;
  };
  for (const auto& [tid, label] : tracks_) {
    append("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(label) + "\"}}");
  }
  for (size_t i = 0; i < size_; ++i) {
    const CompletedSpan& span = completed(i);
    append("{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.track) +
           ",\"ts\":" + std::to_string(span.start_us) +
           ",\"dur\":" + std::to_string(span.dur_us) + ",\"name\":\"" +
           JsonEscape(span.name) + "\",\"cat\":\"" +
           JsonEscape(span.category) + "\"}");
  }
  json += "],\"displayTimeUnit\":\"ms\"}\n";
  return json;
}

bool SpanTracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string text = ToChromeTraceJson();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return written == text.size();
}

}  // namespace obiswap::telemetry
