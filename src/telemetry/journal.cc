#include "telemetry/journal.h"

namespace obiswap::telemetry {

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.resize(capacity_);
}

void EventJournal::Record(std::string_view kind, std::string_view what,
                          std::string_view detail) {
  if (!enabled_) return;
  size_t slot;
  if (size_ < capacity_) {
    slot = (head_ + size_) % capacity_;
    ++size_;
  } else {
    slot = head_;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
  }
  Entry& entry = ring_[slot];
  entry.seq = ++seq_;
  entry.ts_us = clock_ == nullptr ? 0 : clock_->now_us();
  entry.kind.assign(kind.data(), kind.size());
  entry.what.assign(what.data(), what.size());
  entry.detail.assign(detail.data(), detail.size());
}

const EventJournal::Entry& EventJournal::entry(size_t index) const {
  return ring_[(head_ + index) % capacity_];
}

std::string EventJournal::Dump() const {
  std::string out;
  ForEach([&](const Entry& entry) {
    out += "#" + std::to_string(entry.seq) + " @" +
           std::to_string(entry.ts_us) + "us [" + entry.kind + "] " +
           entry.what;
    if (!entry.detail.empty()) out += " {" + entry.detail + "}";
    out += "\n";
  });
  return out;
}

void EventJournal::Clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace obiswap::telemetry
