// Tiered swap hierarchy: the fast local tiers in front of the remote stores.
//
// The paper's single-level device→store model pays full radio latency for
// every swap, yet BENCH_local_vs_remote shows device flash is 13–50× faster
// than the radio path, and compressed RAM is faster still (SWAM-style
// mobile swap stacks layer exactly these tiers). A TierManager owns the two
// device-local tiers of the stack
//
//     heap → compressed in-RAM pool → FlashStore slots → K remote replicas
//
// and the policies between them:
//
//  * placement — a swap-out payload lands in the fastest tier with
//    headroom (RAM if the compressed blob fits the byte budget, else flash
//    if enough wear-levelled slots are free, else the caller falls back to
//    normal remote placement);
//  * promotion — a demand fault probes tiers fastest-first; a flash hit is
//    copied up into the RAM pool so the next re-fault is served at memory
//    speed. The mirror image on eviction: a RAM-only read-cache entry
//    squeezed out of the pool is demoted into free flash slots rather than
//    dropped, so the working set slides down the hierarchy instead of
//    falling off it;
//  * write-back — a tier-resident payload is *pinned* (not evictable)
//    until the durability layer has topped its remote replica group up to
//    K; after MarkWrittenBack() the entry is a pure read cache and the
//    normal LRU eviction may reclaim it. Remote replicas remain the sole
//    durability tier: RAM contents are lost on crash, flash survives.
//
// The flash tier shares the device's FlashStore with the intent journal.
// Slots are fixed-size accounting units handed out least-write-count-first
// (the pintos bitmap-of-slots idiom, with a wear counter per slot), so the
// tier both bounds its share of the partition and spreads erase load.
//
// Payloads are held in store form (the frame-compressed document a remote
// store would hold), so the caller's existing decompress/verify machinery
// works on a tier hit unchanged. The RAM pool additionally wraps each
// payload in an Lz77 frame when that actually shrinks it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "persist/flash_store.h"

namespace obiswap::tier {

/// Which tiers admit new payloads. Probes and write-back always serve
/// entries that already exist, so flipping the mode at runtime never
/// strands a pinned (not yet written back) payload — it drains through the
/// normal durability sweep and simply stops being refreshed.
enum class TierMode : uint8_t {
  kOff,    ///< no tier admission (behavior-identical to no tiers)
  kRam,    ///< compressed-RAM pool only
  kFlash,  ///< flash slots only
  kAll,    ///< RAM first, flash as spill
};

const char* TierModeName(TierMode mode);
Result<TierMode> ParseTierMode(std::string_view name);

/// Which tier served a probe.
enum class TierHit : uint8_t { kNone, kRam, kFlash };

class TierManager {
 public:
  struct Options {
    /// Byte budget of the compressed-RAM pool (compressed sizes are
    /// charged). 0 disables the RAM tier.
    size_t ram_bytes = 0;
    /// Codec used to squeeze RAM-pool blobs (a payload is kept raw when
    /// recompression does not shrink it).
    std::string ram_codec = "lz77";
    /// Flash slot granularity: an entry occupies ceil(bytes/slot) slots.
    size_t flash_slot_bytes = 4096;
    /// Number of slots in the tier's flash partition. 0 disables the
    /// flash tier.
    size_t flash_slots = 0;
    TierMode mode = TierMode::kAll;
  };

  struct Stats {
    uint64_t ram_admits = 0;
    uint64_t ram_rejects = 0;  ///< budget full of pinned entries, or too big
    uint64_t ram_hits = 0;
    uint64_t ram_misses = 0;
    uint64_t ram_evictions = 0;
    uint64_t ram_bytes_saved = 0;  ///< raw minus compressed, admitted blobs
    uint64_t ram_entries_lost = 0;  ///< pool wipes at recovery
    uint64_t flash_admits = 0;
    uint64_t flash_rejects = 0;
    uint64_t flash_hits = 0;
    uint64_t flash_misses = 0;
    uint64_t flash_evictions = 0;
    uint64_t flash_discards = 0;  ///< self-healed or reconciled away
    uint64_t promotions = 0;      ///< flash hit copied up into RAM
    uint64_t demotions = 0;       ///< evicted RAM-only entry saved to flash
    uint64_t write_backs = 0;     ///< entries unpinned (remote group at K)
    uint64_t write_back_bytes = 0;
  };

  /// Counters and gauges in frozen key order (tier_* names), for embedding
  /// in a stats snapshot. A caller with no TierManager attached should emit
  /// StatKeys() with zero values so JSON key sets stay uniform.
  static const std::vector<std::string_view>& StatKeys();
  std::vector<std::pair<std::string_view, uint64_t>> StatsSnapshot() const;

  /// `flash` backs the flash tier (normally the device's local FlashStore,
  /// shared with the intent journal); may be null when only the RAM tier
  /// is wanted.
  TierManager(persist::FlashStore* flash, Options options);
  explicit TierManager(persist::FlashStore* flash)
      : TierManager(flash, Options()) {}

  TierMode mode() const { return options_.mode; }
  void set_mode(TierMode mode) { options_.mode = mode; }
  bool enabled() const { return options_.mode != TierMode::kOff; }
  bool ram_enabled() const {
    return enabled() && options_.mode != TierMode::kFlash &&
           options_.ram_bytes > 0;
  }
  bool flash_enabled() const {
    return enabled() && options_.mode != TierMode::kRam && flash_ != nullptr &&
           options_.flash_slots > 0;
  }
  DeviceId flash_device() const {
    return flash_ != nullptr ? flash_->device() : DeviceId();
  }

  /// Installs the mint for flash keys the tier uses when it demotes an
  /// evicted RAM-only entry down to flash (normally the manager's swap-key
  /// counter, wired up by AttachTierManager). Without a source, RAM
  /// eviction simply drops entries that have no flash copy.
  void set_key_source(std::function<SwapKey()> source) {
    key_source_ = std::move(source);
  }

  size_t ram_bytes_budget() const { return options_.ram_bytes; }
  size_t ram_bytes_used() const { return ram_bytes_used_; }
  size_t flash_slot_bytes() const { return options_.flash_slot_bytes; }
  size_t flash_slots_total() const { return options_.flash_slots; }
  size_t flash_slots_used() const { return slots_used_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t slot_wear(size_t slot) const { return slot_wear_[slot]; }

  /// Resize at runtime (policy actions). Shrinking evicts unpinned entries
  /// LRU-first until within budget; pinned entries may keep the tier over
  /// budget transiently (they drain via write-back) but block admission.
  void set_ram_bytes(size_t bytes);
  void set_flash_slots(size_t slots);

  // --- placement -----------------------------------------------------------

  /// Admits `payload` (store form) into the RAM pool, evicting unpinned
  /// entries LRU-first to make room. Replaces any older tier entry for
  /// `id` (dropping its flash copy too — the tier holds one payload epoch
  /// per cluster). The new entry is pinned until MarkWrittenBack(). False
  /// when the pool cannot make room or the tier is not admitting.
  bool AdmitRam(SwapClusterId id, uint64_t payload_epoch,
                uint32_t payload_checksum, const std::string& payload);

  /// Admits `payload` into flash under `key` (caller-minted, journaled as
  /// a replica intent by the caller before the write). Charges
  /// ceil(bytes/slot) slots chosen least-write-count-first; evicts
  /// unpinned flash entries LRU-first to free slots. kResourceExhausted
  /// when slots cannot be freed; forwards flash write errors.
  Status AdmitFlash(SwapClusterId id, uint64_t payload_epoch,
                    uint32_t payload_checksum, SwapKey key,
                    const std::string& payload);

  // --- demand path ---------------------------------------------------------

  /// Probes tiers fastest-first for the exact (epoch, checksum) payload.
  /// Returns the store-form payload and reports the serving tier. The
  /// flash probe is self-healing: a missing or unreadable flash entry is
  /// discarded (slots freed) and reported as a miss, so keys dropped
  /// behind the tier's back (e.g. recovery adopting a tier key into a
  /// replica list) can never serve stale bytes forever.
  Result<std::string> Probe(SwapClusterId id, uint64_t payload_epoch,
                            uint32_t payload_checksum, TierHit* hit);

  /// Copies a flash-served payload up into the RAM pool (best effort; the
  /// entry keeps its flash copy). No-op when the RAM tier is not admitting
  /// or the payload no longer matches the entry.
  void PromoteToRam(SwapClusterId id, const std::string& payload);

  // --- write-back ----------------------------------------------------------

  /// True when the tier holds a payload for `id` that has not yet been
  /// written back to a full remote replica group.
  bool PendingWriteBack(SwapClusterId id) const;

  /// The payload for the durability layer to replicate from, any tier.
  Result<std::string> PayloadForWriteBack(SwapClusterId id,
                                          uint64_t payload_epoch,
                                          uint32_t payload_checksum);

  /// The remote replica group reached K: unpin, entry becomes read cache.
  void MarkWrittenBack(SwapClusterId id);

  // --- lifecycle -----------------------------------------------------------

  /// Drops every tier copy for `id` (flash key dropped, slots freed).
  /// Called when the cluster's payload is superseded, rolled back, or the
  /// cluster dies.
  void Release(SwapClusterId id);

  /// Release scoped to one payload generation: drops the tier copy only if
  /// it holds exactly (epoch, checksum). Lets an image invalidation retire
  /// its own payload without touching a newer admission for the same
  /// cluster.
  void Release(SwapClusterId id, uint64_t payload_epoch,
               uint32_t payload_checksum);

  /// Recovery: the RAM pool does not survive a restart. Wipes all RAM
  /// copies (entries that also live on flash survive as flash-only) and
  /// returns the number of payloads whose *only* tier copy was RAM.
  size_t DropRamPoolForRecovery();

  struct ReconcileOutcome {
    size_t verified = 0;   ///< flash entries re-read and checksum-verified
    size_t discarded = 0;  ///< entries dropped (stale, missing, or corrupt)
  };

  /// Recovery: reconciles flash-tier state against the post-replay world.
  /// `still_wanted(id, epoch, checksum)` says whether the registry still
  /// has a swapped cluster (or retained image) at exactly that payload;
  /// entries that are not wanted, or whose flash bytes are missing or fail
  /// frame/checksum verification, are discarded and their slots freed.
  /// Survivors stay pinned so the durability sweep re-queues their
  /// write-back.
  ReconcileOutcome ReconcileAfterRestart(
      const std::function<bool(SwapClusterId, uint64_t, uint32_t)>&
          still_wanted);

  /// True when the tier holds a verified-on-flash copy of exactly this
  /// payload (used by recovery to decide whether a replica-less swapped
  /// cluster is actually lost).
  bool HasFlashCopy(SwapClusterId id, uint64_t payload_epoch,
                    uint32_t payload_checksum) const;

  /// The flash key the tier owns for `id` (invalid when none). Recovery
  /// uses it to strip replica-list aliases of tier-owned flash entries.
  SwapKey FlashKey(SwapClusterId id) const;

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t payload_epoch = 0;
    uint32_t payload_checksum = 0;
    size_t payload_bytes = 0;  ///< store-form size
    bool pinned = true;        ///< write-back to K remote still owed
    uint64_t last_use = 0;     ///< LRU tick
    // RAM copy (empty string = not RAM-resident).
    std::string ram_blob;
    bool ram_wrapped = false;  ///< blob is an extra Lz77 frame around payload
    // Flash copy (invalid key = not flash-resident).
    SwapKey flash_key;
    std::vector<size_t> slots;
  };

  void Touch(Entry& entry) { entry.last_use = ++use_seq_; }
  /// LRU unpinned entry currently resident in the given tier; invalid id
  /// if none. Cost-aware: entries also resident in the *other* tier are
  /// preferred (evicting them loses nothing), sole copies go last.
  SwapClusterId EvictionVictim(bool ram) const;
  /// Best-effort save of an evicted RAM-only entry into free flash slots
  /// (never cascades into evicting another entry's flash copy). Demoted
  /// entries are always unpinned — pinned entries are not evictable — so
  /// the skipped replica-intent journaling costs nothing: their payload
  /// already reached K remote replicas.
  bool DemoteToFlash(Entry& entry);
  void DropRamCopy(Entry& entry);
  void DropFlashCopy(Entry& entry);  ///< drops the key, frees the slots
  void EraseIfEmpty(SwapClusterId id);
  /// Least-worn `count` free slots; empty vector when not enough are free.
  std::vector<size_t> AllocateSlots(size_t count);
  void FreeSlots(const std::vector<size_t>& slots);
  bool EnsureRamRoom(size_t need);
  bool EnsureFlashRoom(size_t need_slots);

  persist::FlashStore* flash_;
  Options options_;
  std::unordered_map<SwapClusterId, Entry> entries_;
  size_t ram_bytes_used_ = 0;
  size_t slots_used_ = 0;
  std::vector<uint8_t> slot_used_;
  std::vector<uint64_t> slot_wear_;
  uint64_t use_seq_ = 0;
  std::function<SwapKey()> key_source_;
  Stats stats_;
};

}  // namespace obiswap::tier
