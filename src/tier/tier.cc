#include "tier/tier.h"

#include <algorithm>
#include <limits>

#include "common/checksum.h"
#include "compress/codec.h"

namespace obiswap::tier {

const char* TierModeName(TierMode mode) {
  switch (mode) {
    case TierMode::kOff:
      return "off";
    case TierMode::kRam:
      return "ram";
    case TierMode::kFlash:
      return "flash";
    case TierMode::kAll:
      return "all";
  }
  return "?";
}

Result<TierMode> ParseTierMode(std::string_view name) {
  if (name == "off") return TierMode::kOff;
  if (name == "ram") return TierMode::kRam;
  if (name == "flash") return TierMode::kFlash;
  if (name == "all") return TierMode::kAll;
  return InvalidArgumentError("unknown tier mode '" + std::string(name) +
                              "' (want off|ram|flash|all)");
}

const std::vector<std::string_view>& TierManager::StatKeys() {
  static const std::vector<std::string_view> kKeys = {
      "tier_ram_admits",       "tier_ram_rejects",
      "tier_ram_hits",         "tier_ram_misses",
      "tier_ram_evictions",    "tier_ram_bytes_saved",
      "tier_ram_entries_lost", "tier_ram_bytes",
      "tier_flash_admits",     "tier_flash_rejects",
      "tier_flash_hits",       "tier_flash_misses",
      "tier_flash_evictions",  "tier_flash_discards",
      "tier_flash_slots_used", "tier_promotions",
      "tier_demotions",        "tier_write_backs",
      "tier_write_back_bytes", "tier_pending_write_backs",
  };
  return kKeys;
}

std::vector<std::pair<std::string_view, uint64_t>> TierManager::StatsSnapshot()
    const {
  uint64_t pending = 0;
  for (const auto& [id, entry] : entries_) {
    (void)id;
    if (entry.pinned) ++pending;
  }
  const std::vector<std::string_view>& keys = StatKeys();
  const uint64_t values[] = {
      stats_.ram_admits,       stats_.ram_rejects,
      stats_.ram_hits,         stats_.ram_misses,
      stats_.ram_evictions,    stats_.ram_bytes_saved,
      stats_.ram_entries_lost, ram_bytes_used_,
      stats_.flash_admits,     stats_.flash_rejects,
      stats_.flash_hits,       stats_.flash_misses,
      stats_.flash_evictions,  stats_.flash_discards,
      slots_used_,             stats_.promotions,
      stats_.demotions,        stats_.write_backs,
      stats_.write_back_bytes, pending,
  };
  static_assert(sizeof(values) / sizeof(values[0]) == 20,
                "tier stat keys and values must stay in lockstep");
  std::vector<std::pair<std::string_view, uint64_t>> out;
  out.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) out.emplace_back(keys[i], values[i]);
  return out;
}

TierManager::TierManager(persist::FlashStore* flash, Options options)
    : flash_(flash), options_(std::move(options)) {
  if (flash_ == nullptr) options_.flash_slots = 0;
  if (options_.flash_slot_bytes == 0) options_.flash_slot_bytes = 4096;
  slot_used_.assign(options_.flash_slots, 0);
  slot_wear_.assign(options_.flash_slots, 0);
}

void TierManager::set_ram_bytes(size_t bytes) {
  options_.ram_bytes = bytes;
  while (ram_bytes_used_ > options_.ram_bytes) {
    SwapClusterId victim = EvictionVictim(/*ram=*/true);
    if (!victim.valid()) break;  // pinned overhang drains via write-back
    Entry& entry = entries_.at(victim);
    if (!entry.flash_key.valid()) DemoteToFlash(entry);
    DropRamCopy(entry);
    ++stats_.ram_evictions;
    EraseIfEmpty(victim);
  }
}

void TierManager::set_flash_slots(size_t slots) {
  // Growing keeps existing wear history; shrinking may strand used slots
  // past the new end — evict unpinned flash entries until within bounds.
  options_.flash_slots = slots;
  if (slot_used_.size() < slots) {
    slot_used_.resize(slots, 0);
    slot_wear_.resize(slots, 0);
  }
  auto over_bounds = [&] {
    for (size_t i = slots; i < slot_used_.size(); ++i)
      if (slot_used_[i]) return true;
    return false;
  };
  while (slots_used_ > slots || over_bounds()) {
    SwapClusterId victim = EvictionVictim(/*ram=*/false);
    if (!victim.valid()) break;
    Entry& entry = entries_.at(victim);
    DropFlashCopy(entry);
    ++stats_.flash_evictions;
    EraseIfEmpty(victim);
  }
  if (slot_used_.size() > slots && !over_bounds()) {
    slot_used_.resize(slots);
    slot_wear_.resize(slots);
  }
}

SwapClusterId TierManager::EvictionVictim(bool ram) const {
  // Cost-aware LRU: a victim that is also resident in the other tier
  // loses nothing when this tier's copy goes, so dual-resident entries
  // are evicted before any sole copy (LRU order within each class).
  SwapClusterId dual_victim, sole_victim;
  uint64_t dual_oldest = std::numeric_limits<uint64_t>::max();
  uint64_t sole_oldest = std::numeric_limits<uint64_t>::max();
  for (const auto& [id, entry] : entries_) {
    if (entry.pinned) continue;
    const bool resident = ram ? !entry.ram_blob.empty() : entry.flash_key.valid();
    if (!resident) continue;
    const bool dual = !entry.ram_blob.empty() && entry.flash_key.valid();
    SwapClusterId& victim = dual ? dual_victim : sole_victim;
    uint64_t& oldest = dual ? dual_oldest : sole_oldest;
    if (entry.last_use < oldest) {
      oldest = entry.last_use;
      victim = id;
    }
  }
  return dual_victim.valid() ? dual_victim : sole_victim;
}

bool TierManager::DemoteToFlash(Entry& entry) {
  if (!flash_enabled() || !key_source_ || entry.flash_key.valid()) return false;
  if (entry.ram_blob.empty()) return false;
  // Recover the store-form payload the flash tier holds (the pool may have
  // wrapped it in an extra frame).
  std::string payload;
  if (!entry.ram_wrapped) {
    payload = entry.ram_blob;
  } else {
    Result<std::string> unwrapped = compress::FrameDecompress(entry.ram_blob);
    if (!unwrapped.ok()) return false;
    payload = std::move(*unwrapped);
  }
  if (payload.empty()) return false;
  const size_t need =
      (payload.size() + options_.flash_slot_bytes - 1) / options_.flash_slot_bytes;
  // Opportunistic only: demotion takes free slots or nothing. Evicting
  // another entry's flash copy to make room would just move the loss.
  if (options_.flash_slots - slots_used_ < need) return false;
  std::vector<size_t> slots = AllocateSlots(need);
  if (slots.size() != need) return false;
  const SwapKey key = key_source_();
  if (!flash_->Store(key, payload).ok()) {
    FreeSlots(slots);
    return false;
  }
  entry.flash_key = key;
  entry.slots = std::move(slots);
  ++stats_.demotions;
  return true;
}

void TierManager::DropRamCopy(Entry& entry) {
  if (entry.ram_blob.empty()) return;
  ram_bytes_used_ -= entry.ram_blob.size();
  entry.ram_blob.clear();
  entry.ram_blob.shrink_to_fit();
  entry.ram_wrapped = false;
}

void TierManager::DropFlashCopy(Entry& entry) {
  if (!entry.flash_key.valid()) return;
  if (flash_ != nullptr) (void)flash_->Drop(entry.flash_key);
  FreeSlots(entry.slots);
  entry.slots.clear();
  entry.flash_key = SwapKey();
}

void TierManager::EraseIfEmpty(SwapClusterId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.ram_blob.empty() && !it->second.flash_key.valid())
    entries_.erase(it);
}

std::vector<size_t> TierManager::AllocateSlots(size_t count) {
  std::vector<size_t> free;
  for (size_t i = 0; i < options_.flash_slots && i < slot_used_.size(); ++i)
    if (!slot_used_[i]) free.push_back(i);
  if (free.size() < count) return {};
  // Least-write-count-first: spread erase load across the partition
  // (ties broken by slot index, keeping placement deterministic).
  std::sort(free.begin(), free.end(), [&](size_t a, size_t b) {
    if (slot_wear_[a] != slot_wear_[b]) return slot_wear_[a] < slot_wear_[b];
    return a < b;
  });
  free.resize(count);
  for (size_t slot : free) {
    slot_used_[slot] = 1;
    ++slot_wear_[slot];
    ++slots_used_;
  }
  return free;
}

void TierManager::FreeSlots(const std::vector<size_t>& slots) {
  for (size_t slot : slots) {
    if (slot < slot_used_.size() && slot_used_[slot]) {
      slot_used_[slot] = 0;
      --slots_used_;
    }
  }
}

bool TierManager::EnsureRamRoom(size_t need) {
  if (need > options_.ram_bytes) return false;
  while (ram_bytes_used_ + need > options_.ram_bytes) {
    SwapClusterId victim = EvictionVictim(/*ram=*/true);
    if (!victim.valid()) return false;
    Entry& entry = entries_.at(victim);
    if (!entry.flash_key.valid()) DemoteToFlash(entry);
    DropRamCopy(entry);
    ++stats_.ram_evictions;
    EraseIfEmpty(victim);
  }
  return true;
}

bool TierManager::EnsureFlashRoom(size_t need_slots) {
  if (need_slots > options_.flash_slots) return false;
  auto free_count = [&] { return options_.flash_slots - slots_used_; };
  while (free_count() < need_slots) {
    SwapClusterId victim = EvictionVictim(/*ram=*/false);
    if (!victim.valid()) return false;
    Entry& entry = entries_.at(victim);
    DropFlashCopy(entry);
    ++stats_.flash_evictions;
    EraseIfEmpty(victim);
  }
  return true;
}

bool TierManager::AdmitRam(SwapClusterId id, uint64_t payload_epoch,
                           uint32_t payload_checksum,
                           const std::string& payload) {
  if (!ram_enabled()) return false;
  // Squeeze the store-form payload once more for the pool; keep it raw
  // when recompression does not pay (the blob self-describes via the
  // wrapped flag, not the frame, because the payload is itself a frame).
  std::string blob;
  bool wrapped = false;
  if (const compress::Codec* codec = compress::FindCodec(options_.ram_codec)) {
    Result<std::string> squeezed = compress::FrameCompress(*codec, payload);
    if (squeezed.ok() && squeezed->size() < payload.size()) {
      blob = std::move(*squeezed);
      wrapped = true;
    }
  }
  if (!wrapped) blob = payload;
  // One payload epoch per cluster: a newer admission supersedes every
  // older tier copy, including a flash one under a now-stale key — release
  // first so the superseded copy's budget does not block its replacement.
  Release(id);
  if (!EnsureRamRoom(blob.size())) {
    ++stats_.ram_rejects;
    return false;
  }
  Entry& entry = entries_[id];
  entry.payload_epoch = payload_epoch;
  entry.payload_checksum = payload_checksum;
  entry.payload_bytes = payload.size();
  entry.pinned = true;
  ram_bytes_used_ += blob.size();
  if (wrapped) stats_.ram_bytes_saved += payload.size() - blob.size();
  entry.ram_blob = std::move(blob);
  entry.ram_wrapped = wrapped;
  Touch(entry);
  ++stats_.ram_admits;
  return true;
}

Status TierManager::AdmitFlash(SwapClusterId id, uint64_t payload_epoch,
                               uint32_t payload_checksum, SwapKey key,
                               const std::string& payload) {
  if (!flash_enabled()) {
    ++stats_.flash_rejects;
    return FailedPreconditionError("flash tier is not admitting");
  }
  const size_t need = std::max<size_t>(
      (payload.size() + options_.flash_slot_bytes - 1) /
          options_.flash_slot_bytes,
      1);
  Release(id);  // a newer payload supersedes every older tier copy
  if (!EnsureFlashRoom(need)) {
    ++stats_.flash_rejects;
    return ResourceExhaustedError("flash tier out of slots (" +
                                  std::to_string(slots_used_) + "/" +
                                  std::to_string(options_.flash_slots) +
                                  " used)");
  }
  Status stored = flash_->Store(key, payload);
  if (!stored.ok()) {
    ++stats_.flash_rejects;
    return stored;
  }
  Entry& entry = entries_[id];
  entry.payload_epoch = payload_epoch;
  entry.payload_checksum = payload_checksum;
  entry.payload_bytes = payload.size();
  entry.pinned = true;
  entry.flash_key = key;
  entry.slots = AllocateSlots(need);
  Touch(entry);
  ++stats_.flash_admits;
  return OkStatus();
}

Result<std::string> TierManager::Probe(SwapClusterId id, uint64_t payload_epoch,
                                       uint32_t payload_checksum,
                                       TierHit* hit) {
  *hit = TierHit::kNone;
  auto it = entries_.find(id);
  Entry* entry = it != entries_.end() ? &it->second : nullptr;
  const bool match = entry != nullptr &&
                     entry->payload_epoch == payload_epoch &&
                     entry->payload_checksum == payload_checksum;
  // RAM first: memory speed, no clock charge.
  if (match && !entry->ram_blob.empty()) {
    std::string payload;
    if (!entry->ram_wrapped) {
      payload = entry->ram_blob;
    } else {
      Result<std::string> unwrapped = compress::FrameDecompress(entry->ram_blob);
      if (unwrapped.ok()) payload = std::move(*unwrapped);
    }
    if (!payload.empty()) {
      Touch(*entry);
      ++stats_.ram_hits;
      *hit = TierHit::kRam;
      return payload;
    }
    // Unreadable RAM copy: self-heal by dropping it and falling through.
    DropRamCopy(*entry);
  }
  ++stats_.ram_misses;
  if (match && entry->flash_key.valid()) {
    Result<std::string> fetched = flash_->Fetch(entry->flash_key);
    if (fetched.ok()) {
      Touch(*entry);
      ++stats_.flash_hits;
      *hit = TierHit::kFlash;
      return fetched;
    }
    // Missing or unreadable behind our back (e.g. recovery adopted the key
    // into a replica list and a later drop consumed it): discard the
    // copy so it can never mask the authoritative replicas.
    DropFlashCopy(*entry);
    ++stats_.flash_discards;
    EraseIfEmpty(id);
  }
  ++stats_.flash_misses;
  return NotFoundError("no tier copy of swap-cluster " + id.ToString() +
                       " at epoch " + std::to_string(payload_epoch));
}

void TierManager::PromoteToRam(SwapClusterId id, const std::string& payload) {
  if (!ram_enabled()) return;
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (!entry.ram_blob.empty()) return;  // already RAM-resident
  if (payload.size() != entry.payload_bytes) return;
  std::string blob;
  bool wrapped = false;
  if (const compress::Codec* codec = compress::FindCodec(options_.ram_codec)) {
    Result<std::string> squeezed = compress::FrameCompress(*codec, payload);
    if (squeezed.ok() && squeezed->size() < payload.size()) {
      blob = std::move(*squeezed);
      wrapped = true;
    }
  }
  if (!wrapped) blob = payload;
  if (!EnsureRamRoom(blob.size())) return;
  ram_bytes_used_ += blob.size();
  if (wrapped) stats_.ram_bytes_saved += payload.size() - blob.size();
  entry.ram_blob = std::move(blob);
  entry.ram_wrapped = wrapped;
  Touch(entry);
  ++stats_.promotions;
}

bool TierManager::PendingWriteBack(SwapClusterId id) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.pinned;
}

Result<std::string> TierManager::PayloadForWriteBack(SwapClusterId id,
                                                     uint64_t payload_epoch,
                                                     uint32_t payload_checksum) {
  TierHit hit = TierHit::kNone;
  return Probe(id, payload_epoch, payload_checksum, &hit);
}

void TierManager::MarkWrittenBack(SwapClusterId id) {
  auto it = entries_.find(id);
  if (it == entries_.end() || !it->second.pinned) return;
  it->second.pinned = false;
  ++stats_.write_backs;
  stats_.write_back_bytes += it->second.payload_bytes;
}

void TierManager::Release(SwapClusterId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  DropRamCopy(it->second);
  DropFlashCopy(it->second);
  entries_.erase(it);
}

void TierManager::Release(SwapClusterId id, uint64_t payload_epoch,
                          uint32_t payload_checksum) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second.payload_epoch != payload_epoch ||
      it->second.payload_checksum != payload_checksum)
    return;
  Release(id);
}

size_t TierManager::DropRamPoolForRecovery() {
  size_t ram_only = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (!entry.ram_blob.empty()) {
      DropRamCopy(entry);
      if (!entry.flash_key.valid()) {
        ++ram_only;
        ++stats_.ram_entries_lost;
        it = entries_.erase(it);
        continue;
      }
    }
    ++it;
  }
  return ram_only;
}

TierManager::ReconcileOutcome TierManager::ReconcileAfterRestart(
    const std::function<bool(SwapClusterId, uint64_t, uint32_t)>&
        still_wanted) {
  ReconcileOutcome outcome;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const SwapClusterId id = it->first;
    Entry& entry = it->second;
    bool keep = false;
    if (entry.flash_key.valid() &&
        still_wanted(id, entry.payload_epoch, entry.payload_checksum)) {
      Result<std::string> raw =
          flash_ != nullptr ? flash_->Fetch(entry.flash_key)
                            : Result<std::string>(
                                  UnavailableError("no flash partition"));
      if (raw.ok()) {
        Result<std::string> text = compress::FrameDecompress(*raw);
        keep = text.ok() && Adler32(*text) == entry.payload_checksum;
      }
    }
    if (keep) {
      ++outcome.verified;
      ++it;
    } else {
      DropFlashCopy(entry);
      ++stats_.flash_discards;
      ++outcome.discarded;
      it = entries_.erase(it);
    }
  }
  return outcome;
}

SwapKey TierManager::FlashKey(SwapClusterId id) const {
  auto it = entries_.find(id);
  return it != entries_.end() ? it->second.flash_key : SwapKey();
}

bool TierManager::HasFlashCopy(SwapClusterId id, uint64_t payload_epoch,
                               uint32_t payload_checksum) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.flash_key.valid() &&
         it->second.payload_epoch == payload_epoch &&
         it->second.payload_checksum == payload_checksum;
}

}  // namespace obiswap::tier
