// Strongly-typed identifiers used throughout obiswap.
//
// Each id is a distinct type so a SwapClusterId can never be passed where a
// replication ClusterId is expected; all are cheap 32/64-bit values.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace obiswap {

/// CRTP base providing comparison / hashing for a wrapped integer id.
template <typename Tag, typename Rep = uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

  std::string ToString() const { return std::to_string(value_); }

  static constexpr Rep kInvalid = static_cast<Rep>(-1);

 private:
  Rep value_ = kInvalid;
};

/// Identifies a registered class (type) in the runtime's TypeRegistry.
struct ClassIdTag {};
using ClassId = StrongId<ClassIdTag>;

/// Identifies a registered method within a class.
struct MethodIdTag {};
using MethodId = StrongId<MethodIdTag>;

/// Globally unique object identity (survives replication and swapping).
struct ObjectIdTag {};
using ObjectId = StrongId<ObjectIdTag, uint64_t>;

/// A replication cluster: the unit of incremental replication (OBIWAN §2).
struct ClusterIdTag {};
using ClusterId = StrongId<ClusterIdTag>;

/// A swap-cluster: a group of chained replication clusters — the unit of
/// swapping (paper §3). Id 0 is reserved for swap-cluster-0 (globals).
struct SwapClusterIdTag {};
using SwapClusterId = StrongId<SwapClusterIdTag>;

/// swap-cluster-0: the special cluster holding process roots (paper §3).
inline constexpr SwapClusterId kSwapCluster0 = SwapClusterId(0);

/// A device in the simulated wireless neighbourhood.
struct DeviceIdTag {};
using DeviceId = StrongId<DeviceIdTag>;

/// A stored swap-cluster payload on a StoreNode ("a number, a file name").
struct SwapKeyTag {};
using SwapKey = StrongId<SwapKeyTag, uint64_t>;

}  // namespace obiswap

namespace std {
template <typename Tag, typename Rep>
struct hash<obiswap::StrongId<Tag, Rep>> {
  size_t operator()(obiswap::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>()(id.value());
  }
};
}  // namespace std
