// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace obiswap {

/// Splits on `sep`, keeping empty pieces ("a,,b" → {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

bool StrStartsWith(std::string_view text, std::string_view prefix);
bool StrEndsWith(std::string_view text, std::string_view suffix);

/// Parses a signed decimal integer; whole string must match.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a double; whole string must match.
Result<double> ParseDouble(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("1.5 KiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace obiswap
