#include "common/varint.h"

namespace obiswap {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(std::string_view* in) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = 0;
  while (i < in->size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>((*in)[i]);
    ++i;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      in->remove_prefix(i);
      return result;
    }
    shift += 7;
  }
  return DataLossError("truncated or over-long varint");
}

}  // namespace obiswap
