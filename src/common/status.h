// Status / Result error model used across all obiswap modules.
//
// Modules report recoverable failures (network loss, capacity exhaustion,
// malformed XML, unknown ids) through Status / Result<T> rather than
// exceptions, so every cross-module call site spells out its failure path.
// Programmer errors (broken invariants) use OBISWAP_CHECK, which aborts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace obiswap {

/// Coarse failure categories shared by every module.
enum class StatusCode {
  kOk = 0,
  kNotFound,         ///< id / key / device not known
  kAlreadyExists,    ///< duplicate registration
  kInvalidArgument,  ///< caller passed something malformed
  kFailedPrecondition,  ///< operation not valid in current state
  kResourceExhausted,   ///< heap / store / link capacity exceeded
  kUnavailable,         ///< device out of range, link down
  kDataLoss,            ///< checksum mismatch, truncated payload
  kInternal,            ///< invariant violation surfaced as error
  kDeadlineExceeded,    ///< operation abandoned at its virtual-time budget
};

/// Human-readable name for a StatusCode (stable, used in logs and tests).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);

/// A value of T or a failure Status. Mirrors absl::StatusOr.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access. Aborts if not ok (programmer error).
  T& value() & {
    check_ok();
    return *value_;
  }
  const T& value() const& {
    check_ok();
    return *value_;
  }
  T&& value() && {
    check_ok();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check_ok() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace obiswap

/// Abort with a message if `cond` is false. For invariants, not for
/// recoverable errors.
#define OBISWAP_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "OBISWAP_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

/// Early-return the Status if it is not OK.
#define OBISWAP_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::obiswap::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluate a Result<T> expression; on error return its Status, else bind
/// the value into `lhs`.
#define OBISWAP_ASSIGN_OR_RETURN(lhs, expr)        \
  auto OBISWAP_CONCAT_(_res_, __LINE__) = (expr);  \
  if (!OBISWAP_CONCAT_(_res_, __LINE__).ok())      \
    return OBISWAP_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(OBISWAP_CONCAT_(_res_, __LINE__)).value()

#define OBISWAP_CONCAT_INNER_(a, b) a##b
#define OBISWAP_CONCAT_(a, b) OBISWAP_CONCAT_INNER_(a, b)
