#include "common/checksum.h"

#include <array>

namespace obiswap {

uint32_t Adler32(std::string_view data) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = 1;
  uint32_t b = 0;
  size_t i = 0;
  while (i < data.size()) {
    // Process in blocks small enough that a/b cannot overflow 32 bits.
    size_t block_end = i + 5552;
    if (block_end > data.size()) block_end = data.size();
    for (; i < block_end; ++i) {
      a += static_cast<unsigned char>(data[i]);
      b += a;
    }
    a %= kMod;
    b %= kMod;
  }
  return (b << 16) | a;
}

namespace {
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ull;
  for (char ch : data) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace obiswap
