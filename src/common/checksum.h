// Checksums used to guard swapped payloads against store-side corruption
// (Status kDataLoss on mismatch at swap-in time).
#pragma once

#include <cstdint>
#include <string_view>

namespace obiswap {

/// Adler-32 over `data` (RFC 1950 variant). Fast, good enough for payload
/// integrity in the simulated store.
uint32_t Adler32(std::string_view data);

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used for policy/file checks.
uint32_t Crc32(std::string_view data);

/// 64-bit FNV-1a hash, used for content-addressed dedup in StoreNode stats.
uint64_t Fnv1a64(std::string_view data);

}  // namespace obiswap
