#include "common/rng.h"

namespace obiswap {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  for (auto& word : state_) word = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace obiswap
