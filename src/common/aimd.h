// AIMD pacer for background store-traffic producers.
//
// The durability repair sweep, the tier write-back path and the prefetch
// drain are all open-loop producers: left alone they submit as much work
// per poll as they can find, which is exactly wrong while the store pool is
// shedding load. An AimdPacer bounds how many operations one batch (sweep,
// drain) may launch; the cap opens additively on success and halves on
// pushback, the classic TCP-style response that converges on the store's
// actual service rate without any explicit signalling beyond the pushback
// status itself.
//
// Deterministic by construction: integer cap, no time source, no
// randomness. Disabled (the default) it admits everything, so attaching a
// pacer is byte-parity-safe until a policy or option switches it on.
#pragma once

#include <cstdint>

namespace obiswap {

class AimdPacer {
 public:
  struct Options {
    bool enabled = false;
    uint32_t min_cap = 1;      ///< floor after repeated pushback
    uint32_t max_cap = 64;     ///< ceiling the additive increase stops at
    uint32_t initial_cap = 4;  ///< cap before any feedback arrives
  };

  struct Stats {
    uint64_t windows = 0;    ///< batches started
    uint64_t admitted = 0;   ///< operations allowed through
    uint64_t deferred = 0;   ///< operations refused (cap reached)
    uint64_t raises = 0;     ///< additive increases applied
    uint64_t backoffs = 0;   ///< multiplicative decreases applied
  };

  AimdPacer() : AimdPacer(Options()) {}
  explicit AimdPacer(Options options)
      : options_(options), cap_(ClampCap(options.initial_cap)) {}

  bool enabled() const { return options_.enabled; }
  void set_enabled(bool enabled) { options_.enabled = enabled; }
  uint32_t cap() const { return cap_; }
  const Stats& stats() const { return stats_; }

  /// Starts a new batch; the in-window admission count resets but the cap
  /// carries over (the feedback loop spans batches).
  void BeginWindow() {
    in_window_ = 0;
    ++stats_.windows;
  }

  /// True if the current batch may launch one more operation. Disabled
  /// pacers admit everything.
  bool Admit() {
    if (!options_.enabled) {
      ++stats_.admitted;
      return true;
    }
    if (in_window_ >= cap_) {
      ++stats_.deferred;
      return false;
    }
    ++in_window_;
    ++stats_.admitted;
    return true;
  }

  /// Additive increase: the store served us, the cap can open one notch.
  void OnSuccess() {
    if (!options_.enabled) return;
    if (cap_ < ClampCap(options_.max_cap)) {
      ++cap_;
      ++stats_.raises;
    }
  }

  /// Multiplicative decrease: the store shed us, halve the cap.
  void OnPushback() {
    if (!options_.enabled) return;
    uint32_t halved = cap_ / 2;
    cap_ = halved < options_.min_cap ? ClampCap(options_.min_cap) : halved;
    ++stats_.backoffs;
  }

 private:
  uint32_t ClampCap(uint32_t cap) const {
    uint32_t floor = options_.min_cap > 0 ? options_.min_cap : 1;
    return cap < floor ? floor : cap;
  }

  Options options_;
  uint32_t cap_;
  uint32_t in_window_ = 0;
  Stats stats_;
};

}  // namespace obiswap
