// Deterministic RNG (xoshiro256**) so simulations, workloads and
// property-based tests are reproducible from a seed.
#pragma once

#include <cstdint>

namespace obiswap {

/// Deterministic pseudo-random generator. Same seed → same sequence on every
/// platform (no reliance on std::mt19937 distribution details).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seed (splitmix64 expansion of the single seed word).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound) — bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t state_[4];
};

}  // namespace obiswap
