#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cctype>

namespace obiswap {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StrStartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty integer");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return InvalidArgumentError("integer out of range");
  if (end != buf.c_str() + buf.size())
    return InvalidArgumentError("trailing characters in integer: " + buf);
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty double");
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return InvalidArgumentError("double out of range");
  if (end != buf.c_str() + buf.size())
    return InvalidArgumentError("trailing characters in double: " + buf);
  return v;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

}  // namespace obiswap
