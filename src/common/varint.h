// LEB128-style varint encoding, used by the compression codecs' container
// format and by StoreNode's on-"disk" layout.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace obiswap {

/// Appends `value` to `out` as an unsigned LEB128 varint (1..10 bytes).
void PutVarint64(std::string* out, uint64_t value);

/// Appends a 32-bit value (convenience wrapper).
inline void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

/// Reads a varint from the front of `*in`, advancing it past the encoding.
/// Fails with kDataLoss if `*in` is truncated or over-long.
Result<uint64_t> GetVarint64(std::string_view* in);

/// ZigZag mapping so small negative numbers stay short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace obiswap
