// Minimal leveled logger. Off by default above kWarn so tests stay quiet;
// examples raise the level to narrate what the middleware is doing.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace obiswap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level actually emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace obiswap

#define OBISWAP_LOG(level)                                                  \
  if (::obiswap::LogLevel::level < ::obiswap::GetLogLevel()) {              \
  } else                                                                    \
    ::obiswap::internal::LogMessage(::obiswap::LogLevel::level, __FILE__,   \
                                    __LINE__)                               \
        .stream()
