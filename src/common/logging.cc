#include "common/logging.h"

#include <atomic>

namespace obiswap {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& message) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}
}  // namespace internal

}  // namespace obiswap
