// Class metadata: the runtime's reflection layer.
//
// The original system used the `obicomp` compiler to generate per-class
// proxy code. We replace codegen with metadata: every class registers its
// fields (traced and serialized by name/kind) and methods (invoked by name).
// Generic proxies driven by this metadata implement the same mediation
// rules the generated code implemented (see DESIGN.md §4 Substitutions).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/value.h"

namespace obiswap::runtime {

class Runtime;

/// What role instances of a class play. Regular application objects are
/// swappable; the three middleware kinds are interception points.
enum class ObjectKind : uint8_t {
  kRegular = 0,
  kReplicationProxy,  ///< stands in for a not-yet-replicated object (OBIWAN §2)
  kSwapClusterProxy,  ///< permanent mediator across swap-cluster boundaries (§3)
  kReplacement,       ///< stands in for a swapped-out swap-cluster (§3)
};

/// One declared field.
struct FieldInfo {
  std::string name;
  /// Declared kind. kNil means "any" (slot accepts every kind).
  ValueKind kind = ValueKind::kNil;
};

/// A method body. `self` is always the *actual* object (proxies forward).
using MethodFn =
    std::function<Result<Value>(Runtime&, Object* self, std::vector<Value>&)>;

struct MethodInfo {
  std::string name;
  MethodFn fn;
};

/// Runs when an instance is collected. Must not touch managed objects —
/// only middleware bookkeeping (the paper uses finalizers exactly this way:
/// dropping SwappingManager table entries).
using Finalizer = std::function<void(Object*)>;

/// Immutable class descriptor. Created through ClassBuilder.
class ClassInfo {
 public:
  ClassId id() const { return id_; }
  const std::string& name() const { return name_; }
  ObjectKind kind() const { return kind_; }
  const std::vector<FieldInfo>& fields() const { return fields_; }
  const std::vector<MethodInfo>& methods() const { return methods_; }
  size_t payload_bytes() const { return payload_bytes_; }
  const Finalizer& finalizer() const { return finalizer_; }
  bool has_finalizer() const { return static_cast<bool>(finalizer_); }

  /// Field index by name, or npos.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t FieldIndex(std::string_view name) const;
  /// Method by name, or nullptr.
  const MethodInfo* FindMethod(std::string_view name) const;

 private:
  friend class ClassBuilder;
  friend class TypeRegistry;

  ClassId id_;
  std::string name_;
  ObjectKind kind_ = ObjectKind::kRegular;
  std::vector<FieldInfo> fields_;
  std::vector<MethodInfo> methods_;
  std::unordered_map<std::string, size_t> field_index_;
  size_t payload_bytes_ = 0;
  Finalizer finalizer_;
};

/// Fluent builder for ClassInfo; finish with Build() on a TypeRegistry.
class ClassBuilder {
 public:
  explicit ClassBuilder(std::string name);

  ClassBuilder& Kind(ObjectKind kind);
  /// Declares a field; order defines slot layout.
  ClassBuilder& Field(std::string name, ValueKind kind = ValueKind::kNil);
  /// Declares a method.
  ClassBuilder& Method(std::string name, MethodFn fn);
  /// Extra opaque bytes each instance occupies (models object payload size;
  /// the paper's micro-benchmark uses 64-byte objects).
  ClassBuilder& PayloadBytes(size_t bytes);
  ClassBuilder& OnFinalize(Finalizer finalizer);

 private:
  friend class TypeRegistry;
  std::unique_ptr<ClassInfo> info_;
};

/// Owns all ClassInfo instances of one runtime. Class names are unique.
class TypeRegistry {
 public:
  TypeRegistry() = default;
  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  /// Registers the built class. Error if the name already exists. Accepts
  /// both a fluent chain (which yields an lvalue reference) and a plain
  /// temporary.
  Result<const ClassInfo*> Register(ClassBuilder& builder);
  Result<const ClassInfo*> Register(ClassBuilder&& builder) {
    return Register(builder);
  }

  /// Lookup by name / id; nullptr if unknown.
  const ClassInfo* Find(std::string_view name) const;
  const ClassInfo* Find(ClassId id) const;

  size_t size() const { return classes_.size(); }

 private:
  std::vector<std::unique_ptr<ClassInfo>> classes_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace obiswap::runtime
