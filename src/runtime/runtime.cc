#include "runtime/runtime.h"

namespace obiswap::runtime {

Runtime::Runtime(uint16_t process_id, size_t capacity_bytes)
    : process_id_(process_id), heap_(capacity_bytes) {
  heap_.AddRootProvider(this);
}

Runtime::~Runtime() { heap_.RemoveRootProvider(this); }

ObjectId Runtime::NextObjectId() {
  return ObjectId((static_cast<uint64_t>(process_id_) << 48) |
                  next_object_seq_++);
}

Result<Object*> Runtime::TryNew(const ClassInfo* cls) {
  OBISWAP_ASSIGN_OR_RETURN(Object * obj,
                           heap_.TryAllocate(cls, NextObjectId()));
  obj->set_swap_cluster(CurrentSwapCluster());
  return obj;
}

Object* Runtime::New(const ClassInfo* cls) {
  Object* obj = heap_.Allocate(cls, NextObjectId());
  obj->set_swap_cluster(CurrentSwapCluster());
  return obj;
}

Result<Object*> Runtime::TryNewWithId(const ClassInfo* cls, ObjectId oid) {
  return heap_.TryAllocate(cls, oid);
}

Result<Object*> Runtime::TryNewMiddleware(const ClassInfo* cls) {
  return heap_.TryAllocate(cls, NextObjectId(),
                           Heap::AllocPolicy::kMiddleware);
}

Result<Value> Runtime::GetField(Object* obj, std::string_view field) const {
  if (obj == nullptr) return InvalidArgumentError("GetField on null object");
  size_t index = obj->cls().FieldIndex(field);
  if (index == ClassInfo::kNpos)
    return NotFoundError("no field '" + std::string(field) + "' on class " +
                         obj->cls().name());
  return obj->RawSlot(index);
}

Status Runtime::SetField(Object* obj, std::string_view field, Value value) {
  if (obj == nullptr) return InvalidArgumentError("SetField on null object");
  size_t index = obj->cls().FieldIndex(field);
  if (index == ClassInfo::kNpos)
    return NotFoundError("no field '" + std::string(field) + "' on class " +
                         obj->cls().name());
  return SetFieldAt(obj, index, std::move(value));
}

Status Runtime::SetFieldAt(Object* obj, size_t index, Value value) {
  if (obj == nullptr) return InvalidArgumentError("SetField on null object");
  if (index >= obj->slot_count())
    return InvalidArgumentError("field index out of range");
  const FieldInfo& field = obj->cls().fields()[index];
  if (field.kind != ValueKind::kNil && !value.is_nil() &&
      value.kind() != field.kind) {
    return InvalidArgumentError("field '" + field.name + "' of class " +
                                obj->cls().name() + " expects " +
                                ValueKindName(field.kind) + ", got " +
                                ValueKindName(value.kind()));
  }
  ++stats_.field_writes;
  if (mediator_ != nullptr) mediator_->ObserveFieldWrite(*this, obj, index);
  if (value.is_ref()) {
    // Mediation may allocate a proxy and thus collect; neither the holder
    // nor the incoming value is necessarily rooted by the caller.
    LocalScope scope(heap_);
    scope.Add(obj);
    scope.Add(value.ref());
    value.set_ref(ApplyStoreMediation(obj, value.ref()));
  }
  bool had_dynamic = obj->RawSlot(index).DynamicBytes() > 0;
  obj->RawSlotMutable(index) = std::move(value);
  if (had_dynamic || obj->RawSlot(index).DynamicBytes() > 0) {
    heap_.RefreshAccounting(obj);
  }
  return OkStatus();
}

Status Runtime::SetGlobal(std::string_view name, Value value) {
  ++stats_.global_writes;
  if (value.is_ref()) {
    // Globals belong to swap-cluster-0: holder == nullptr. Root the value
    // across mediation (which may allocate and collect).
    LocalScope scope(heap_);
    scope.Add(value.ref());
    value.set_ref(ApplyStoreMediation(nullptr, value.ref()));
  }
  globals_[std::string(name)] = std::move(value);
  return OkStatus();
}

Result<Value> Runtime::GetGlobal(std::string_view name) const {
  auto it = globals_.find(std::string(name));
  if (it == globals_.end())
    return NotFoundError("no global '" + std::string(name) + "'");
  return it->second;
}

bool Runtime::HasGlobal(std::string_view name) const {
  return globals_.count(std::string(name)) > 0;
}

void Runtime::RemoveGlobal(std::string_view name) {
  globals_.erase(std::string(name));
}

std::vector<std::pair<std::string, Object*>> Runtime::GlobalRefs() const {
  std::vector<std::pair<std::string, Object*>> out;
  for (const auto& [name, value] : globals_) {
    if (value.is_ref() && value.ref() != nullptr)
      out.emplace_back(name, value.ref());
  }
  return out;
}

Result<Value> Runtime::Invoke(Object* receiver, std::string_view method,
                              std::vector<Value> args) {
  if (receiver == nullptr) return InvalidArgumentError("Invoke on null");
  // Root the receiver and reference arguments for the duration of the call:
  // allocation inside the callee (or inside proxy mediation) may trigger a
  // collection, and neither is necessarily reachable otherwise.
  LocalScope scope(heap_);
  scope.Add(receiver);
  for (const Value& arg : args) {
    if (arg.is_ref() && arg.ref() != nullptr) scope.Add(arg.ref());
  }
  ObjectKind kind = receiver->kind();
  if (kind != ObjectKind::kRegular) {
    Interceptor* interceptor = interceptors_[static_cast<size_t>(kind)];
    if (interceptor == nullptr)
      return FailedPreconditionError(
          "no interceptor installed for object kind of class " +
          receiver->cls().name());
    ++stats_.intercepted_invocations;
    return interceptor->Invoke(*this, receiver, method, args);
  }
  const MethodInfo* info = receiver->cls().FindMethod(method);
  if (info == nullptr)
    return NotFoundError("no method '" + std::string(method) + "' on class " +
                         receiver->cls().name());
  ++stats_.direct_invocations;
  context_stack_.push_back(receiver->swap_cluster());
  Result<Value> result = info->fn(*this, receiver, args);
  context_stack_.pop_back();
  return result;
}

bool Runtime::SameObject(const Object* a, const Object* b) const {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (identity_ != nullptr) return identity_->SameObject(a, b);
  return false;
}

void Runtime::SetInterceptor(ObjectKind kind, Interceptor* interceptor) {
  interceptors_[static_cast<size_t>(kind)] = interceptor;
}

SwapClusterId Runtime::CurrentSwapCluster() const {
  if (context_stack_.empty()) return kSwapCluster0;
  return context_stack_.back();
}

void Runtime::EnumerateRoots(const std::function<void(Object*)>& visit) {
  for (auto& [name, value] : globals_) {
    if (value.is_ref()) visit(value.ref());
  }
}

Object* Runtime::ApplyStoreMediation(Object* holder, Object* value) {
  if (mediator_ == nullptr || value == nullptr) return value;
  return mediator_->MediateStore(*this, holder, value);
}

}  // namespace obiswap::runtime
