#include "runtime/value.h"

namespace obiswap::runtime {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kRef:
      return "ref";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kReal:
      return "real";
    case ValueKind::kStr:
      return "str";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ValueKind::kNil:
      return true;
    case ValueKind::kRef:
      return ref_ == other.ref_;
    case ValueKind::kInt:
      return int_ == other.int_;
    case ValueKind::kReal:
      return real_ == other.real_;
    case ValueKind::kStr:
      return str_ == other.str_;
  }
  return false;
}

}  // namespace obiswap::runtime
