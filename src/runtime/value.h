// Value: the tagged slot type of the managed runtime.
//
// Every field of a managed object is a Value — nil, an object reference, an
// integer, a real, or a string (strings are binary-safe and double as byte
// blobs). The GC traces kRef slots; the serializer round-trips all kinds.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace obiswap::runtime {

class Object;

enum class ValueKind : uint8_t {
  kNil = 0,
  kRef,   ///< reference to a managed Object (possibly a proxy)
  kInt,   ///< 64-bit signed integer
  kReal,  ///< double
  kStr,   ///< binary-safe string / byte blob
};

/// Stable kind names used by the XML serializer ("nil", "ref", ...).
const char* ValueKindName(ValueKind kind);

/// A tagged value. Copyable; copying a kRef copies the pointer (object
/// identity), copying a kStr copies the bytes.
class Value {
 public:
  Value() = default;
  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  /// Move-assignment swaps the string payload instead of std::string's
  /// move-assign, which keeps the destination's (possibly huge) buffer when
  /// the source is short — that would leak capacity into slot accounting.
  Value& operator=(Value&& other) noexcept {
    kind_ = other.kind_;
    ref_ = other.ref_;
    int_ = other.int_;
    str_.swap(other.str_);
    return *this;
  }

  static Value Nil() { return Value(); }
  static Value Ref(Object* target) {
    Value v;
    v.kind_ = ValueKind::kRef;
    v.ref_ = target;
    return v;
  }
  static Value Int(int64_t value) {
    Value v;
    v.kind_ = ValueKind::kInt;
    v.int_ = value;
    return v;
  }
  static Value Real(double value) {
    Value v;
    v.kind_ = ValueKind::kReal;
    v.real_ = value;
    return v;
  }
  static Value Str(std::string value) {
    Value v;
    v.kind_ = ValueKind::kStr;
    v.str_ = std::move(value);
    return v;
  }

  ValueKind kind() const { return kind_; }
  bool is_nil() const { return kind_ == ValueKind::kNil; }
  bool is_ref() const { return kind_ == ValueKind::kRef; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_real() const { return kind_ == ValueKind::kReal; }
  bool is_str() const { return kind_ == ValueKind::kStr; }

  /// Accessors assume the matching kind (checked in debug via the caller).
  Object* ref() const { return ref_; }
  int64_t as_int() const { return int_; }
  double as_real() const { return real_; }
  const std::string& as_str() const { return str_; }

  /// For middleware use: retarget a kRef value in place.
  void set_ref(Object* target) { ref_ = target; }

  /// Approximate heap bytes attributable to this slot beyond its inline
  /// footprint (string payload only).
  size_t DynamicBytes() const {
    return kind_ == ValueKind::kStr ? str_.capacity() : 0;
  }

  /// Structural equality: same kind and same payload (kRef compares the
  /// pointer — swap-cluster-proxy identity is handled by SwapIdentity).
  bool operator==(const Value& other) const;

 private:
  ValueKind kind_ = ValueKind::kNil;
  Object* ref_ = nullptr;
  union {
    int64_t int_ = 0;
    double real_;
  };
  std::string str_;
};

}  // namespace obiswap::runtime
