#include "runtime/class_registry.h"

namespace obiswap::runtime {

size_t ClassInfo::FieldIndex(std::string_view name) const {
  auto it = field_index_.find(std::string(name));
  return it == field_index_.end() ? kNpos : it->second;
}

const MethodInfo* ClassInfo::FindMethod(std::string_view name) const {
  for (const MethodInfo& method : methods_) {
    if (method.name == name) return &method;
  }
  return nullptr;
}

ClassBuilder::ClassBuilder(std::string name)
    : info_(std::make_unique<ClassInfo>()) {
  info_->name_ = std::move(name);
}

ClassBuilder& ClassBuilder::Kind(ObjectKind kind) {
  info_->kind_ = kind;
  return *this;
}

ClassBuilder& ClassBuilder::Field(std::string name, ValueKind kind) {
  info_->field_index_[name] = info_->fields_.size();
  info_->fields_.push_back(FieldInfo{std::move(name), kind});
  return *this;
}

ClassBuilder& ClassBuilder::Method(std::string name, MethodFn fn) {
  info_->methods_.push_back(MethodInfo{std::move(name), std::move(fn)});
  return *this;
}

ClassBuilder& ClassBuilder::PayloadBytes(size_t bytes) {
  info_->payload_bytes_ = bytes;
  return *this;
}

ClassBuilder& ClassBuilder::OnFinalize(Finalizer finalizer) {
  info_->finalizer_ = std::move(finalizer);
  return *this;
}

Result<const ClassInfo*> TypeRegistry::Register(ClassBuilder& builder) {
  std::unique_ptr<ClassInfo> info = std::move(builder.info_);
  if (by_name_.count(info->name_) > 0)
    return AlreadyExistsError("class '" + info->name_ + "' already registered");
  info->id_ = ClassId(static_cast<uint32_t>(classes_.size()));
  by_name_[info->name_] = classes_.size();
  classes_.push_back(std::move(info));
  return static_cast<const ClassInfo*>(classes_.back().get());
}

const ClassInfo* TypeRegistry::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : classes_[it->second].get();
}

const ClassInfo* TypeRegistry::Find(ClassId id) const {
  if (!id.valid() || id.value() >= classes_.size()) return nullptr;
  return classes_[id.value()].get();
}

}  // namespace obiswap::runtime
