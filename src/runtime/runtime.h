// Runtime: one managed process (a "virtual machine" instance on a device).
//
// Ties together the type registry, the heap/LGC, the global variable table
// (the paper's swap-cluster-0), method invocation, and the two hooks the
// swapping layer plugs into *without* modifying this runtime — the whole
// point of the paper is that object-swapping needs only user-level code:
//
//   * Interceptor     — invocation on proxy/replacement kinds is delegated
//                       (object-fault handling, swap-cluster mediation).
//   * StoreMediator   — every reference store (field write or global write)
//                       is mediated so cross-swap-cluster references are
//                       wrapped in swap-cluster-proxies (rules i-iii, §4).
//
// With no hooks installed the runtime behaves like a plain VM — that is the
// paper's "NO SWAP-CLUSTERS" lower-bound configuration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/class_registry.h"
#include "runtime/heap.h"
#include "runtime/object.h"

namespace obiswap::runtime {

/// Handles invocations on non-regular object kinds (proxies, replacements).
class Interceptor {
 public:
  virtual ~Interceptor() = default;
  virtual Result<Value> Invoke(Runtime& rt, Object* receiver,
                               std::string_view method,
                               std::vector<Value>& args) = 0;
};

/// Mediates reference stores. `holder` is the object whose field is being
/// written, or nullptr for a global (swap-cluster-0) store. Returns the
/// object that should actually be stored (the value itself, an existing
/// swap-cluster-proxy, or a freshly created one).
class StoreMediator {
 public:
  virtual ~StoreMediator() = default;
  virtual Object* MediateStore(Runtime& rt, Object* holder, Object* value) = 0;

  /// Write-barrier notification: field `slot` of `holder` is about to
  /// change (any value kind — MediateStore alone only sees reference
  /// stores). The swapping layer uses this to mark the holder's
  /// swap-cluster dirty and to track which fields changed (the input to
  /// delta swap-out). Must not allocate on `rt`'s heap. Default: no-op.
  virtual void ObserveFieldWrite(Runtime& rt, Object* holder, size_t slot) {
    (void)rt;
    (void)holder;
    (void)slot;
  }
};

/// Decides reference identity when proxies are involved (paper §4
/// "Enforcing Object Identity" — the C# operator== overload).
class IdentityHook {
 public:
  virtual ~IdentityHook() = default;
  virtual bool SameObject(const Object* a, const Object* b) = 0;
};

class Runtime : public RootProvider {
 public:
  struct Stats {
    uint64_t direct_invocations = 0;
    uint64_t intercepted_invocations = 0;
    uint64_t field_writes = 0;
    uint64_t global_writes = 0;
  };

  /// `process_id` namespaces ObjectIds so replicas keep global identity
  /// across devices; `capacity_bytes` models device RAM.
  explicit Runtime(uint16_t process_id = 1, size_t capacity_bytes = SIZE_MAX);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  TypeRegistry& types() { return types_; }
  const TypeRegistry& types() const { return types_; }
  Heap& heap() { return heap_; }
  const Heap& heap() const { return heap_; }
  uint16_t process_id() const { return process_id_; }
  const Stats& stats() const { return stats_; }

  // --- allocation ---------------------------------------------------------
  /// Fresh ObjectId in this process's namespace.
  ObjectId NextObjectId();
  /// Allocates with a fresh id. New objects inherit the swap-cluster of the
  /// currently executing method's receiver (objects created by a cluster's
  /// code belong to that cluster); top-level allocations are unassigned.
  Result<Object*> TryNew(const ClassInfo* cls);
  /// Aborting variant for self-sized callers (benchmarks).
  Object* New(const ClassInfo* cls);
  /// Allocates preserving a replicated / swapped-in object's identity.
  Result<Object*> TryNewWithId(const ClassInfo* cls, ObjectId oid);
  /// Middleware allocation (proxies, replacement-objects): fresh id, no
  /// pressure-handler re-entry, may overcommit (see Heap::AllocPolicy).
  Result<Object*> TryNewMiddleware(const ClassInfo* cls);

  // --- fields (application-level access: write barrier applies) -----------
  Result<Value> GetField(Object* obj, std::string_view field) const;
  /// Unchecked-by-name fast path.
  const Value& GetFieldAt(const Object* obj, size_t index) const {
    return obj->RawSlot(index);
  }
  Status SetField(Object* obj, std::string_view field, Value value);
  Status SetFieldAt(Object* obj, size_t index, Value value);

  // --- globals (swap-cluster-0) -------------------------------------------
  /// Stores a global; reference values pass through the StoreMediator with
  /// holder = nullptr (they are held by swap-cluster-0, paper §3).
  Status SetGlobal(std::string_view name, Value value);
  Result<Value> GetGlobal(std::string_view name) const;
  bool HasGlobal(std::string_view name) const;
  void RemoveGlobal(std::string_view name);
  /// Snapshot of all reference-valued globals (middleware: proxy
  /// replacement patches these through SetGlobal).
  std::vector<std::pair<std::string, Object*>> GlobalRefs() const;

  // --- invocation ----------------------------------------------------------
  /// Invokes `method` on `receiver`. Regular objects dispatch directly;
  /// proxy/replacement kinds go through the registered Interceptor.
  Result<Value> Invoke(Object* receiver, std::string_view method,
                       std::vector<Value> args = {});

  /// Reference identity test honoring swap-cluster-proxies.
  bool SameObject(const Object* a, const Object* b) const;

  // --- hooks (installed by the swapping / replication layers) -------------
  void SetInterceptor(ObjectKind kind, Interceptor* interceptor);
  Interceptor* interceptor(ObjectKind kind) const {
    return interceptors_[static_cast<size_t>(kind)];
  }
  void SetStoreMediator(StoreMediator* mediator) { mediator_ = mediator; }
  StoreMediator* store_mediator() const { return mediator_; }
  void SetIdentityHook(IdentityHook* hook) { identity_ = hook; }

  /// Swap-cluster of the currently executing method's receiver
  /// (kSwapCluster0 outside any invocation).
  SwapClusterId CurrentSwapCluster() const;

  /// The whole invocation-context stack (innermost last). The swapping
  /// layer's victim selection must never pick a cluster that is currently
  /// executing.
  const std::vector<SwapClusterId>& context_stack() const {
    return context_stack_;
  }

  // RootProvider: enumerates globals.
  void EnumerateRoots(const std::function<void(Object*)>& visit) override;

 private:
  Object* ApplyStoreMediation(Object* holder, Object* value);

  uint16_t process_id_;
  uint64_t next_object_seq_ = 1;
  TypeRegistry types_;
  Heap heap_;
  std::unordered_map<std::string, Value> globals_;
  Interceptor* interceptors_[4] = {nullptr, nullptr, nullptr, nullptr};
  StoreMediator* mediator_ = nullptr;
  IdentityHook* identity_ = nullptr;
  std::vector<SwapClusterId> context_stack_;
  Stats stats_;
};

}  // namespace obiswap::runtime
