// Object: a managed heap instance.
//
// Objects are allocated by Heap, traced by the mark-sweep LGC, and carry the
// two cluster labels that drive replication and swapping: the replication
// cluster they arrived in (OBIWAN §2) and the swap-cluster they belong to
// (paper §3). They are NOT movable: the collector never relocates, so raw
// Object* stays valid while the object is reachable.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "runtime/class_registry.h"
#include "runtime/value.h"

namespace obiswap::runtime {

class Heap;

class Object {
 public:
  const ClassInfo& cls() const { return *cls_; }
  ObjectKind kind() const { return cls_->kind(); }
  ObjectId oid() const { return oid_; }

  ClusterId cluster() const { return cluster_; }
  void set_cluster(ClusterId id) { cluster_ = id; }

  SwapClusterId swap_cluster() const { return swap_cluster_; }
  void set_swap_cluster(SwapClusterId id) { swap_cluster_ = id; }

  size_t slot_count() const { return slots_.size(); }

  /// Raw slot access — middleware only. Application code must go through
  /// Runtime::GetField / Runtime::SetField so write barriers run.
  const Value& RawSlot(size_t index) const { return slots_[index]; }
  Value& RawSlotMutable(size_t index) { return slots_[index]; }

  /// Middleware: appends an anonymous slot beyond the class's named fields.
  /// Replacement-objects use this — they are "simply an array of
  /// references" (paper §3) whose length is the swapped cluster's outbound
  /// degree. Traced by the GC like any slot.
  size_t AppendSlot(Value value) {
    slots_.push_back(std::move(value));
    return slots_.size() - 1;
  }

  /// Approximate heap footprint: header + slots + class payload + dynamic
  /// string bytes. Used for capacity accounting on the constrained device.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Object) + slots_.capacity() * sizeof(Value) +
                   cls_->payload_bytes();
    for (const Value& slot : slots_) bytes += slot.DynamicBytes();
    return bytes;
  }

  // --- GC state (Heap only, exposed for white-box tests) ---------------
  bool marked() const { return marked_; }

 private:
  friend class Heap;

  Object(const ClassInfo* cls, ObjectId oid)
      : cls_(cls), oid_(oid), slots_(cls->fields().size()) {}

  const ClassInfo* cls_;
  ObjectId oid_;
  ClusterId cluster_;
  SwapClusterId swap_cluster_;
  std::vector<Value> slots_;

  bool marked_ = false;
  bool finalized_ = false;
  size_t accounted_bytes_ = 0;  // bytes charged to the heap for this object
  Object* next_ = nullptr;      // intrusive all-objects list
};

}  // namespace obiswap::runtime
