#include "runtime/heap.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace obiswap::runtime {

namespace {
constexpr size_t kInitialGcBytes = 256 * 1024;
constexpr int kMaxPressureRetries = 8;
}  // namespace

Heap::Heap(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes), next_gc_bytes_(kInitialGcBytes) {}

Heap::~Heap() {
  // Free everything without running finalizers (process teardown).
  Object* obj = all_objects_;
  while (obj != nullptr) {
    Object* next = obj->next_;
    delete obj;
    obj = next;
  }
}

Result<Object*> Heap::TryAllocate(const ClassInfo* cls, ObjectId oid,
                                  AllocPolicy policy) {
  OBISWAP_CHECK(cls != nullptr);
  // Estimate the new object's footprint before constructing it.
  const size_t estimate = sizeof(Object) +
                          cls->fields().size() * sizeof(Value) +
                          cls->payload_bytes();

  // Scheduled collection: keep floating garbage bounded even far below
  // capacity (proxies churn hard in the paper's B1 test).
  if (!in_collect_ && used_bytes_ + estimate > next_gc_bytes_) Collect();

  if (!Fits(estimate) && !in_collect_) {
    Collect();
    // The pressure handler typically swaps out a cluster, which itself
    // allocates (the replacement-object); guard against re-entry, and never
    // enter it at all for middleware allocations.
    if (!in_pressure_ && policy == AllocPolicy::kApplication) {
      in_pressure_ = true;
      int retries = 0;
      while (!Fits(estimate) && pressure_handler_ &&
             retries < kMaxPressureRetries) {
        ++stats_.pressure_events;
        if (!pressure_handler_(estimate)) break;
        Collect();
        ++retries;
      }
      in_pressure_ = false;
    }
  }
  if (policy == AllocPolicy::kMiddleware && !Fits(estimate)) {
    // Overcommit: middleware objects are small and transient; charging them
    // while exceeding capacity keeps the accounting honest without
    // deadlocking the swap machinery.
  } else if (!Fits(estimate)) {
    return ResourceExhaustedError(StrFormat(
        "heap full: need %zu bytes, used %zu of %zu", estimate, used_bytes_,
        capacity_bytes_));
  }

  Object* obj = new Object(cls, oid);
  obj->next_ = all_objects_;
  all_objects_ = obj;
  obj->accounted_bytes_ = obj->ApproxBytes();
  used_bytes_ += obj->accounted_bytes_;
  ++live_objects_;
  ++stats_.objects_allocated;
  stats_.bytes_allocated += obj->accounted_bytes_;
  return obj;
}

Object* Heap::Allocate(const ClassInfo* cls, ObjectId oid) {
  Result<Object*> result = TryAllocate(cls, oid);
  if (!result.ok()) {
    OBISWAP_LOG(kError) << "allocation failed: " << result.status().ToString();
    OBISWAP_CHECK(false && "Heap::Allocate exhausted");
  }
  return *result;
}

void Heap::RefreshAccounting(Object* obj) {
  size_t now = obj->ApproxBytes();
  if (now == obj->accounted_bytes_) return;
  if (now > obj->accounted_bytes_) {
    size_t delta = now - obj->accounted_bytes_;
    used_bytes_ += delta;
    stats_.bytes_allocated += delta;
  } else {
    size_t delta = obj->accounted_bytes_ - now;
    used_bytes_ -= delta;
    stats_.bytes_freed += delta;
  }
  obj->accounted_bytes_ = now;
}

void Heap::Collect() {
  if (in_collect_) return;
  in_collect_ = true;
  ++stats_.collections;

  // --- mark --------------------------------------------------------------
  std::vector<Object*> worklist;
  auto mark = [&worklist](Object* obj) {
    if (obj != nullptr && !obj->marked_) {
      obj->marked_ = true;
      worklist.push_back(obj);
    }
  };
  for (Object* local : locals_) mark(local);
  for (RootProvider* provider : root_providers_) {
    provider->EnumerateRoots(mark);
  }
  while (!worklist.empty()) {
    Object* obj = worklist.back();
    worklist.pop_back();
    for (size_t i = 0; i < obj->slot_count(); ++i) {
      const Value& slot = obj->RawSlot(i);
      if (slot.is_ref()) mark(slot.ref());
    }
  }

  // --- extended weak references: persist dying referents first ------------
  {
    size_t write = 0;
    for (size_t read = 0; read < extended_cells_.size(); ++read) {
      std::shared_ptr<WeakCell> cell = extended_cells_[read].cell.lock();
      if (cell == nullptr) continue;  // holder dropped the reference
      if (cell->target_ != nullptr && !cell->target_->marked_) {
        ++stats_.extended_persists;
        extended_cells_[read].persist(cell->target_);
        // The cell clears in the regular weak pass below.
      }
      if (write != read)
        extended_cells_[write] = std::move(extended_cells_[read]);
      ++write;
    }
    extended_cells_.resize(write);
  }

  // --- clear dead weak cells ----------------------------------------------
  size_t write = 0;
  for (size_t read = 0; read < weak_cells_.size(); ++read) {
    std::shared_ptr<WeakCell> cell = weak_cells_[read].lock();
    if (cell == nullptr) continue;  // holder dropped the weak ref
    if (cell->target_ != nullptr && !cell->target_->marked_) {
      cell->target_ = nullptr;
      ++stats_.weakrefs_cleared;
    }
    weak_cells_[write++] = weak_cells_[read];
  }
  weak_cells_.resize(write);

  // --- sweep ---------------------------------------------------------------
  Object** link = &all_objects_;
  while (*link != nullptr) {
    Object* obj = *link;
    if (obj->marked_) {
      obj->marked_ = false;
      link = &obj->next_;
      continue;
    }
    *link = obj->next_;
    if (obj->cls().has_finalizer() && !obj->finalized_) {
      obj->finalized_ = true;
      ++stats_.finalizers_run;
      // No resurrection: finalizers only do middleware bookkeeping (the
      // paper's SwappingManager drops hash-table entries here).
      obj->cls().finalizer()(obj);
    }
    Free(obj);
  }

  stats_.last_live_objects = live_objects_;
  stats_.last_live_bytes = used_bytes_;
  // Next scheduled collection: grow with the live set, bounded by capacity.
  next_gc_bytes_ = std::max(kInitialGcBytes, used_bytes_ * 2);
  if (capacity_bytes_ != SIZE_MAX)
    next_gc_bytes_ = std::min(next_gc_bytes_, capacity_bytes_);
  in_collect_ = false;
}

void Heap::Free(Object* obj) {
  used_bytes_ -= obj->accounted_bytes_;
  --live_objects_;
  ++stats_.objects_freed;
  stats_.bytes_freed += obj->accounted_bytes_;
  delete obj;
}

void Heap::AddRootProvider(RootProvider* provider) {
  root_providers_.push_back(provider);
}

void Heap::RemoveRootProvider(RootProvider* provider) {
  root_providers_.erase(
      std::remove(root_providers_.begin(), root_providers_.end(), provider),
      root_providers_.end());
}

WeakRef Heap::NewWeakRef(Object* target) {
  auto cell = std::make_shared<WeakCell>(target);
  weak_cells_.push_back(cell);
  return cell;
}

WeakRef Heap::NewExtendedWeakRef(Object* target, PersistFn persist) {
  WeakRef cell = NewWeakRef(target);
  extended_cells_.push_back(ExtendedCell{cell, std::move(persist)});
  return cell;
}

Object** Heap::PushLocal(Object* obj) {
  locals_.push_back(obj);
  return &locals_.back();
}

void Heap::TruncateLocals(size_t depth) {
  OBISWAP_CHECK(depth <= locals_.size());
  locals_.resize(depth);
}

void Heap::ForEachObject(const std::function<void(Object*)>& visit) const {
  for (Object* obj = all_objects_; obj != nullptr; obj = obj->next_) {
    visit(obj);
  }
}

}  // namespace obiswap::runtime
