// Heap: capacity-limited allocation and the local garbage collector (LGC).
//
// Models the constrained device's managed heap: a byte capacity, a
// non-moving mark-sweep collector, weak references, finalizers, local handle
// scopes (thread-stack roots) and pluggable root providers. When an
// allocation cannot fit even after collection, the heap calls its pressure
// handler — this is the hook through which the policy engine triggers
// swap-out ("from time to time ... memory reaches a threshold value").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/object.h"

namespace obiswap::runtime {

/// Target cell of a weak reference. `get()` is nullptr once the referent has
/// been collected. Holders keep the shared_ptr; the heap keeps a weak_ptr.
class WeakCell {
 public:
  explicit WeakCell(Object* target) : target_(target) {}
  Object* get() const { return target_; }
  bool cleared() const { return target_ == nullptr; }

 private:
  friend class Heap;
  Object* target_;
};

using WeakRef = std::shared_ptr<WeakCell>;

/// Anything that contributes GC roots (the Runtime's global table, the
/// replication endpoint's proxy registry, ...).
class RootProvider {
 public:
  virtual ~RootProvider() = default;
  virtual void EnumerateRoots(const std::function<void(Object*)>& visit) = 0;
};

class Heap {
 public:
  struct Stats {
    uint64_t collections = 0;
    uint64_t objects_allocated = 0;
    uint64_t objects_freed = 0;
    uint64_t bytes_allocated = 0;
    uint64_t bytes_freed = 0;
    uint64_t finalizers_run = 0;
    uint64_t weakrefs_cleared = 0;
    uint64_t extended_persists = 0;
    uint64_t pressure_events = 0;
    uint64_t last_live_objects = 0;
    uint64_t last_live_bytes = 0;
  };

  /// `capacity_bytes` models the device's RAM budget for managed objects.
  explicit Heap(size_t capacity_bytes = SIZE_MAX);
  ~Heap();

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Who is allocating. kMiddleware (proxies, replacement-objects) never
  /// re-enters the pressure handler — swapping out *while creating the
  /// machinery of a swap* must not recurse — and may overcommit the
  /// capacity by the small proxy footprint (the paper's proxies also cost
  /// memory; the overhead benches account for it).
  enum class AllocPolicy { kApplication, kMiddleware };

  // --- allocation -------------------------------------------------------
  /// Allocates an instance. Collects (and asks the pressure handler to free
  /// memory, e.g. by swapping out) if the capacity would be exceeded.
  Result<Object*> TryAllocate(const ClassInfo* cls, ObjectId oid,
                              AllocPolicy policy = AllocPolicy::kApplication);
  /// Like TryAllocate but aborts on exhaustion (for code that sized the
  /// heap itself, e.g. benchmarks).
  Object* Allocate(const ClassInfo* cls, ObjectId oid);

  size_t capacity_bytes() const { return capacity_bytes_; }
  void set_capacity_bytes(size_t bytes) { capacity_bytes_ = bytes; }
  size_t used_bytes() const { return used_bytes_; }
  size_t live_objects() const { return live_objects_; }

  /// Fraction of the capacity currently free (0..1). Middleware allocation
  /// may overcommit slightly, so the used side is clamped to the capacity.
  /// Speculative work (prefetch) gates on this headroom.
  double free_fraction() const {
    if (capacity_bytes_ == 0) return 0.0;
    size_t used = used_bytes_ < capacity_bytes_ ? used_bytes_ : capacity_bytes_;
    return static_cast<double>(capacity_bytes_ - used) /
           static_cast<double>(capacity_bytes_);
  }

  /// Re-computes an object's byte accounting after a slot mutation (string
  /// payloads change an object's footprint).
  void RefreshAccounting(Object* obj);

  // --- garbage collection ------------------------------------------------
  /// Full mark-sweep: marks from local scopes + root providers, clears dead
  /// weak cells, runs finalizers of dead objects (no resurrection: a
  /// finalizer must only touch middleware bookkeeping), frees the rest.
  void Collect();

  const Stats& stats() const { return stats_; }

  void AddRootProvider(RootProvider* provider);
  void RemoveRootProvider(RootProvider* provider);

  /// Pressure handler: called when an allocation of `needed` bytes cannot
  /// fit even after a collection. Returns true if it (probably) freed
  /// memory and allocation should be retried.
  using PressureHandler = std::function<bool(size_t needed)>;
  void SetPressureHandler(PressureHandler handler) {
    pressure_handler_ = std::move(handler);
  }

  // --- weak references ----------------------------------------------------
  /// Creates a weak reference to `target` (cleared when it is collected).
  WeakRef NewWeakRef(Object* target);

  /// Extended weak reference (.Net Micro Framework style, the paper's
  /// related work [7]): "a specialized garbage collector attempts to copy
  /// to available persistent memory unreachable objects that are targeted
  /// by extended weak references, instead of reclaiming them." When the
  /// referent becomes unreachable, `persist` runs with the object still
  /// intact (typically serializing it to local flash), then the cell
  /// clears like a regular weak reference. Same restrictions as
  /// finalizers: no allocation, no resurrection.
  using PersistFn = std::function<void(Object*)>;
  WeakRef NewExtendedWeakRef(Object* target, PersistFn persist);

  // --- local handle scopes (thread-stack roots) ---------------------------
  size_t LocalDepth() const { return locals_.size(); }
  /// Pushes `obj` as a root; returns a stable slot (valid until the
  /// enclosing LocalScope pops it). Middleware-level: no store mediation.
  Object** PushLocal(Object* obj);
  void TruncateLocals(size_t depth);

  /// Iterates every live object (white-box tests, replication patching).
  void ForEachObject(const std::function<void(Object*)>& visit) const;

 private:
  bool Fits(size_t bytes) const {
    return used_bytes_ + bytes <= capacity_bytes_;
  }
  void Free(Object* obj);

  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  size_t live_objects_ = 0;
  size_t next_gc_bytes_;

  Object* all_objects_ = nullptr;  // intrusive singly-linked list
  std::deque<Object*> locals_;     // deque: stable slot addresses
  std::vector<RootProvider*> root_providers_;
  std::vector<std::weak_ptr<WeakCell>> weak_cells_;
  struct ExtendedCell {
    std::weak_ptr<WeakCell> cell;
    PersistFn persist;
  };
  std::vector<ExtendedCell> extended_cells_;
  PressureHandler pressure_handler_;
  bool in_collect_ = false;
  bool in_pressure_ = false;

  Stats stats_;
};

/// RAII local root frame. All PushLocal slots created while the scope is
/// alive are released on destruction.
class LocalScope {
 public:
  explicit LocalScope(Heap& heap) : heap_(heap), base_(heap.LocalDepth()) {}
  ~LocalScope() { heap_.TruncateLocals(base_); }

  LocalScope(const LocalScope&) = delete;
  LocalScope& operator=(const LocalScope&) = delete;

  /// Roots `obj`; the returned slot may be re-assigned to re-root.
  Object** Add(Object* obj) { return heap_.PushLocal(obj); }

 private:
  Heap& heap_;
  size_t base_;
};

}  // namespace obiswap::runtime
