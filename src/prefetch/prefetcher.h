// Prefetcher: budgeted background swap-in driven by fault history.
//
// Wires the FaultHistoryRecorder and Predictor to the SwappingManager: on
// every demand fault (cluster-swapped-in with the prefetch flag unset) it
// predicts the likely successors and drains them from a bounded queue under
// two explicit resource gates:
//
//   * budget    — at most this many clusters' speculative work outstanding
//     (staged payloads + speculatively loaded clusters). Caps how much of
//     the device's memory and link time a wrong guess can burn.
//   * headroom  — free-heap fraction gates. Below `stage_headroom` nothing
//     speculative happens at all. Between the two gates the prefetcher only
//     *stages*: it fetches + decompresses the payload into the existing
//     PayloadCache (zero heap-object churn — the later demand fault skips
//     the radio and the codec but still pays deserialize). Above the
//     stricter `swap_in_headroom`, full mode performs a complete
//     speculative SwapIn, taking the fault off the critical path entirely.
//
// A consumed guess publishes "prefetch-hit"; a speculatively loaded cluster
// evicted before the application touched it publishes "prefetch-waste".
// Both ride the hit/waste accounting in SwappingManager::Stats.
//
// Default-off: with mode kOff (the default) the prefetcher only learns;
// constructed nowhere, the middleware is bit-identical to the paper's
// demand-driven behavior.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>

#include "common/ids.h"
#include "common/status.h"
#include "context/events.h"
#include "net/sim_clock.h"
#include "prefetch/fault_history.h"
#include "prefetch/predictor.h"
#include "runtime/runtime.h"
#include "swap/manager.h"

namespace obiswap::prefetch {

enum class PrefetchMode {
  kOff,       ///< learn only; never touch the store speculatively
  kCacheOnly, ///< stage payloads into the PayloadCache, never swap in
  kFull,      ///< full speculative SwapIn when headroom allows, else stage
};

const char* PrefetchModeName(PrefetchMode mode);
/// Parses "off" | "cache" | "full" (the policy action's vocabulary).
Result<PrefetchMode> ParsePrefetchMode(const std::string& name);

class Prefetcher {
 public:
  struct Options {
    PrefetchMode mode = PrefetchMode::kOff;
    /// Max outstanding speculative clusters (staged + loaded).
    size_t budget = 2;
    /// Bounded prediction queue; overflow drops the newest predictions.
    size_t queue_capacity = 8;
    /// Predictor dials (see Predictor::Options).
    double confidence_threshold = 0.4;
    size_t max_predictions = 2;
    /// Free-heap fraction below which nothing speculative runs.
    double stage_headroom = 0.10;
    /// Stricter gate for full speculative swap-in (kFull only); below it
    /// the prefetcher degrades to staging.
    double swap_in_headroom = 0.25;
    /// Recorder dials (see FaultHistoryRecorder::Options).
    uint64_t half_life_us = 30'000'000;
    size_t max_successors = 8;
    /// AIMD pacing of the drain: each drain is one window, speculative ops
    /// past the cap wait in the queue, and store pushback halves the cap —
    /// prefetch yields to demand traffic the moment stores saturate.
    /// Disabled by default.
    AimdPacer::Options drain_pacer;
  };

  struct Stats {
    uint64_t demand_faults = 0;       ///< demand swap-ins observed
    uint64_t predictions = 0;         ///< successors the predictor offered
    uint64_t enqueued = 0;
    uint64_t queue_overflows = 0;     ///< predictions dropped, queue full
    uint64_t budget_deferred = 0;     ///< drain stops: budget exhausted
    uint64_t headroom_blocked = 0;    ///< drain stops: heap too full
    uint64_t staged = 0;              ///< payloads staged into the cache
    uint64_t speculative_swap_ins = 0;
    uint64_t errors = 0;              ///< speculative ops that failed
    uint64_t paced_deferred = 0;      ///< drain stops: AIMD cap reached
  };

  /// Subscribes to the bus and installs the manager's crossing observer.
  /// `manager` must have the same bus attached (its swap events feed the
  /// recorder); one prefetcher per manager.
  Prefetcher(runtime::Runtime& rt, swap::SwappingManager& manager,
             context::EventBus& bus)
      : Prefetcher(rt, manager, bus, Options()) {}
  Prefetcher(runtime::Runtime& rt, swap::SwappingManager& manager,
             context::EventBus& bus, Options options);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Virtual time for edge decay (same clock the network advances).
  void AttachClock(const net::SimClock* clock);

  // --- runtime tuning (policy actions "set-prefetch-mode" / "-budget") ----
  void set_mode(PrefetchMode mode) { options_.mode = mode; }
  void set_budget(size_t budget) { options_.budget = budget; }
  void set_confidence_threshold(double threshold);

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }
  const FaultHistoryRecorder& recorder() const { return recorder_; }
  const Predictor& predictor() const { return predictor_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void OnSwappedIn(const context::Event& event);
  void OnPrefetchHit(const context::Event& event);
  void OnClusterEntered(SwapClusterId id);
  void PredictAndEnqueue(SwapClusterId from);
  void Enqueue(SwapClusterId id);
  void Drain();

  runtime::Runtime& rt_;
  swap::SwappingManager& manager_;
  context::EventBus& bus_;
  Options options_;
  FaultHistoryRecorder recorder_;
  Predictor predictor_;

  uint64_t swapped_in_token_ = 0;
  uint64_t hit_token_ = 0;

  std::deque<SwapClusterId> queue_;
  std::unordered_set<SwapClusterId> queued_;
  bool in_drain_ = false;  ///< speculative work must not recurse into Drain
  Stats stats_;
  /// AIMD cap on speculative ops per drain (options_.drain_pacer).
  AimdPacer drain_pacer_;
};

}  // namespace obiswap::prefetch
