#include "prefetch/predictor.h"

namespace obiswap::prefetch {

std::vector<SwapClusterId> Predictor::Predict(SwapClusterId from) const {
  std::vector<SwapClusterId> predicted;
  if (options_.max_predictions == 0) return predicted;
  for (const FaultHistoryRecorder::Successor& successor :
       recorder_.Successors(from)) {
    if (successor.confidence < options_.confidence_threshold) continue;
    predicted.push_back(successor.id);
    if (predicted.size() >= options_.max_predictions) break;
  }
  return predicted;
}

}  // namespace obiswap::prefetch
