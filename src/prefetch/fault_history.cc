#include "prefetch/fault_history.h"

#include <algorithm>
#include <cmath>

namespace obiswap::prefetch {

FaultHistoryRecorder::FaultHistoryRecorder(Options options)
    : options_(options) {}

FaultHistoryRecorder::~FaultHistoryRecorder() {
  if (bus_ != nullptr) {
    bus_->Unsubscribe(in_token_);
    bus_->Unsubscribe(out_token_);
    bus_->Unsubscribe(drop_token_);
  }
}

void FaultHistoryRecorder::Attach(context::EventBus* bus) {
  bus_ = bus;
  in_token_ = bus_->Subscribe(
      context::kEventClusterSwappedIn, [this](const context::Event& event) {
        // Speculative swap-ins are the prefetcher's own doing, not an
        // application touch — learning from them would make the predictor
        // confirm its own guesses.
        if (event.GetIntOr("prefetch", 0) != 0) return;
        int64_t sc = event.GetIntOr("swap_cluster", -1);
        if (sc >= 0) OnEnter(SwapClusterId(static_cast<uint32_t>(sc)));
      });
  out_token_ = bus_->Subscribe(
      context::kEventClusterSwappedOut, [this](const context::Event& event) {
        // The LRU victim is the least-recently-crossed cluster; if that is
        // the last one entered, a long quiet gap has passed and the next
        // entry belongs to a new access phase.
        int64_t sc = event.GetIntOr("swap_cluster", -1);
        if (sc >= 0 &&
            SwapClusterId(static_cast<uint32_t>(sc)) == last_entered_) {
          BreakSequence();
        }
      });
  drop_token_ = bus_->Subscribe(
      context::kEventClusterDropped, [this](const context::Event& event) {
        int64_t sc = event.GetIntOr("swap_cluster", -1);
        if (sc >= 0) Forget(SwapClusterId(static_cast<uint32_t>(sc)));
      });
}

double FaultHistoryRecorder::Decayed(const Edge& edge) const {
  if (options_.half_life_us == 0 || clock_ == nullptr) return edge.weight;
  uint64_t now = NowUs();
  if (now <= edge.stamp_us) return edge.weight;
  double half_lives = static_cast<double>(now - edge.stamp_us) /
                      static_cast<double>(options_.half_life_us);
  return edge.weight * std::pow(0.5, half_lives);
}

void FaultHistoryRecorder::EvictLightest(EdgeMap& out) {
  auto lightest = out.end();
  double lightest_weight = 0.0;
  for (auto it = out.begin(); it != out.end(); ++it) {
    double weight = Decayed(it->second);
    if (lightest == out.end() || weight < lightest_weight) {
      lightest = it;
      lightest_weight = weight;
    }
  }
  if (lightest != out.end()) {
    out.erase(lightest);
    ++stats_.edges_evicted;
  }
}

void FaultHistoryRecorder::OnEnter(SwapClusterId id) {
  if (!id.valid() || id == kSwapCluster0) return;
  if (id == last_entered_) return;  // intra-cluster activity, not a move
  ++stats_.entries_recorded;
  if (last_entered_.valid()) {
    EdgeMap& out = edges_[last_entered_];
    auto it = out.find(id);
    if (it == out.end()) {
      if (out.size() >= options_.max_successors) EvictLightest(out);
      out.emplace(id, Edge{1.0, NowUs()});
    } else {
      it->second.weight = Decayed(it->second) + 1.0;
      it->second.stamp_us = NowUs();
    }
    ++stats_.edges_updated;
  }
  last_entered_ = id;
}

void FaultHistoryRecorder::BreakSequence() {
  if (!last_entered_.valid()) return;
  last_entered_ = SwapClusterId();
  ++stats_.sequence_breaks;
}

std::vector<FaultHistoryRecorder::Successor> FaultHistoryRecorder::Successors(
    SwapClusterId from) const {
  std::vector<Successor> ranked;
  auto it = edges_.find(from);
  if (it == edges_.end()) return ranked;
  double total = 0.0;
  for (const auto& [to, edge] : it->second) {
    double weight = Decayed(edge);
    if (weight <= 0.0) continue;
    ranked.push_back(Successor{to, weight, 0.0});
    total += weight;
  }
  if (total <= 0.0) return ranked;
  for (Successor& successor : ranked) {
    successor.confidence = successor.weight / total;
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Successor& a, const Successor& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.id.value() < b.id.value();  // deterministic ties
            });
  return ranked;
}

void FaultHistoryRecorder::Forget(SwapClusterId id) {
  edges_.erase(id);
  for (auto& [from, out] : edges_) {
    (void)from;
    out.erase(id);
  }
  if (last_entered_ == id) BreakSequence();
}

void FaultHistoryRecorder::Reset() {
  edges_.clear();
  last_entered_ = SwapClusterId();
}

size_t FaultHistoryRecorder::edge_count() const {
  size_t count = 0;
  for (const auto& [from, out] : edges_) {
    (void)from;
    count += out.size();
  }
  return count;
}

}  // namespace obiswap::prefetch
