// Fault-history learning for predictive swap-in.
//
// The paper's swap-in is entirely demand-driven: touching a
// replacement-object stalls the application for a full fetch + decompress +
// deserialize over the slow link. The prefetch subsystem hides that stall
// by learning which swap-cluster the application enters *after* which, and
// swapping the likely successor back in before it is touched.
//
// The recorder maintains a first-order Markov transition graph over
// swap-cluster *entry order*: every boundary crossing reported by the
// SwappingManager (and every demand swap-in event) appends to a virtual
// entry sequence, and each consecutive pair (A entered, then B entered)
// strengthens the directed edge A->B. Edge weights decay exponentially in
// virtual time, so stale access patterns fade instead of poisoning
// predictions forever.
//
// Deliberately keyed on *temporal* adjacency, not on the proxy's source
// cluster: the common iteration pattern keeps its cursor in a
// swap-cluster-0 global, so every crossing is sourced in cluster 0 and a
// source-keyed chain would learn nothing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "context/events.h"
#include "net/sim_clock.h"

namespace obiswap::prefetch {

class FaultHistoryRecorder {
 public:
  struct Options {
    /// Virtual-time half-life of an edge weight: an edge last reinforced
    /// this long ago counts half. 0 disables decay (pure counts).
    uint64_t half_life_us = 30'000'000;
    /// Outgoing edges kept per cluster; the lightest edge is evicted when a
    /// new successor appears beyond the cap. Bounds memory on devices whose
    /// access patterns churn.
    size_t max_successors = 8;
  };

  /// One ranked successor: `confidence` is this edge's share of the source
  /// cluster's total outgoing weight (1.0 = the only successor ever seen).
  struct Successor {
    SwapClusterId id;
    double weight = 0.0;
    double confidence = 0.0;
  };

  struct Stats {
    uint64_t entries_recorded = 0;  ///< OnEnter calls that were usable
    uint64_t edges_updated = 0;     ///< edge creations + reinforcements
    uint64_t edges_evicted = 0;     ///< successors dropped by the cap
    uint64_t sequence_breaks = 0;   ///< resets of the "last entered" state
  };

  FaultHistoryRecorder() : FaultHistoryRecorder(Options()) {}
  explicit FaultHistoryRecorder(Options options);
  ~FaultHistoryRecorder();

  FaultHistoryRecorder(const FaultHistoryRecorder&) = delete;
  FaultHistoryRecorder& operator=(const FaultHistoryRecorder&) = delete;

  /// Subscribes to the swap events: a demand swap-in (prefetch flag absent
  /// or 0) records an entry, a swap-out of the last-entered cluster breaks
  /// the sequence (the application has moved on — an edge drawn across the
  /// eviction would link unrelated phases), and a drop forgets the cluster.
  void Attach(context::EventBus* bus);
  /// Edge decay runs on virtual time; without a clock weights are pure
  /// counts (decay disabled).
  void AttachClock(const net::SimClock* clock) { clock_ = clock; }

  /// Records that the application entered `id` (boundary crossing or
  /// demand fault). Consecutive duplicates and swap-cluster-0 (the ambient
  /// application cluster, never swappable) are ignored.
  void OnEnter(SwapClusterId id);

  /// Forgets the "last entered" state so the next entry starts a fresh
  /// transition pair instead of linking across a discontinuity.
  void BreakSequence();

  /// Outgoing edges of `from`, heaviest first, with decayed weights and
  /// confidences. Empty if `from` has never been followed by anything.
  std::vector<Successor> Successors(SwapClusterId from) const;

  /// Removes `id` from the graph entirely (dropped cluster: its id will
  /// never fault again).
  void Forget(SwapClusterId id);
  void Reset();

  size_t cluster_count() const { return edges_.size(); }
  size_t edge_count() const;
  SwapClusterId last_entered() const { return last_entered_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  struct Edge {
    double weight = 0.0;
    uint64_t stamp_us = 0;  ///< virtual time of the last reinforcement
  };
  using EdgeMap = std::unordered_map<SwapClusterId, Edge>;

  uint64_t NowUs() const { return clock_ != nullptr ? clock_->now_us() : 0; }
  double Decayed(const Edge& edge) const;
  void EvictLightest(EdgeMap& out);

  Options options_;
  const net::SimClock* clock_ = nullptr;
  context::EventBus* bus_ = nullptr;
  uint64_t in_token_ = 0;
  uint64_t out_token_ = 0;
  uint64_t drop_token_ = 0;

  SwapClusterId last_entered_;  ///< invalid until the first entry
  std::unordered_map<SwapClusterId, EdgeMap> edges_;
  Stats stats_;
};

}  // namespace obiswap::prefetch
