#include "prefetch/prefetcher.h"

#include "common/logging.h"

namespace obiswap::prefetch {

const char* PrefetchModeName(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kOff:
      return "off";
    case PrefetchMode::kCacheOnly:
      return "cache";
    case PrefetchMode::kFull:
      return "full";
  }
  return "off";
}

Result<PrefetchMode> ParsePrefetchMode(const std::string& name) {
  if (name == "off") return PrefetchMode::kOff;
  if (name == "cache") return PrefetchMode::kCacheOnly;
  if (name == "full") return PrefetchMode::kFull;
  return InvalidArgumentError("unknown prefetch mode '" + name +
                              "' (expected off | cache | full)");
}

Prefetcher::Prefetcher(runtime::Runtime& rt, swap::SwappingManager& manager,
                       context::EventBus& bus, Options options)
    : rt_(rt),
      manager_(manager),
      bus_(bus),
      options_(options),
      recorder_(FaultHistoryRecorder::Options{options.half_life_us,
                                              options.max_successors}),
      predictor_(recorder_, Predictor::Options{options.confidence_threshold,
                                               options.max_predictions}),
      drain_pacer_(options.drain_pacer) {
  recorder_.Attach(&bus_);
  swapped_in_token_ = bus_.Subscribe(
      context::kEventClusterSwappedIn,
      [this](const context::Event& event) { OnSwappedIn(event); });
  hit_token_ = bus_.Subscribe(
      context::kEventPrefetchHit,
      [this](const context::Event& event) { OnPrefetchHit(event); });
  manager_.SetCrossingObserver(
      [this](SwapClusterId id) { OnClusterEntered(id); });
}

Prefetcher::~Prefetcher() {
  manager_.SetCrossingObserver(nullptr);
  bus_.Unsubscribe(swapped_in_token_);
  bus_.Unsubscribe(hit_token_);
}

void Prefetcher::AttachClock(const net::SimClock* clock) {
  recorder_.AttachClock(clock);
}

void Prefetcher::set_confidence_threshold(double threshold) {
  options_.confidence_threshold = threshold;
  predictor_.set_confidence_threshold(threshold);
}

void Prefetcher::OnClusterEntered(SwapClusterId id) {
  // Every boundary crossing feeds the transition graph, whether or not
  // prefetching is currently allowed to act — mode kOff still learns, so
  // enabling prefetch later starts from a warm history.
  recorder_.OnEnter(id);
}

void Prefetcher::OnSwappedIn(const context::Event& event) {
  if (event.GetIntOr("prefetch", 0) != 0) return;  // our own speculation
  int64_t sc = event.GetIntOr("swap_cluster", -1);
  if (sc < 0) return;
  ++stats_.demand_faults;
  if (options_.mode == PrefetchMode::kOff) return;
  PredictAndEnqueue(SwapClusterId(static_cast<uint32_t>(sc)));
  Drain();
}

void Prefetcher::OnPrefetchHit(const context::Event& event) {
  if (options_.mode == PrefetchMode::kOff) return;
  // A staged hit is consumed inside a demand SwapIn, whose own
  // cluster-swapped-in event continues the chain; only a hit on a
  // speculatively *loaded* cluster has no other trigger.
  Result<std::string> kind = event.GetString("kind");
  if (!kind.ok() || *kind != "loaded") return;
  int64_t sc = event.GetIntOr("swap_cluster", -1);
  if (sc < 0) return;
  PredictAndEnqueue(SwapClusterId(static_cast<uint32_t>(sc)));
  Drain();
}

void Prefetcher::PredictAndEnqueue(SwapClusterId from) {
  for (SwapClusterId next : predictor_.Predict(from)) {
    ++stats_.predictions;
    // Only swapped clusters are prefetchable; loaded or dropped ones have
    // nothing to fetch.
    if (manager_.StateOf(next) != swap::SwapState::kSwapped) continue;
    Enqueue(next);
  }
}

void Prefetcher::Enqueue(SwapClusterId id) {
  if (queued_.count(id) > 0) return;
  if (queue_.size() >= options_.queue_capacity) {
    ++stats_.queue_overflows;
    return;
  }
  queue_.push_back(id);
  queued_.insert(id);
  ++stats_.enqueued;
}

void Prefetcher::Drain() {
  if (in_drain_) return;
  // Drain runs on every crossing; don't trace the (common) empty case.
  if (queue_.empty()) return;
  in_drain_ = true;
  telemetry::ScopedSpan span(&manager_.telemetry(), "prefetch_drain",
                             "prefetch");
  drain_pacer_.BeginWindow();
  while (!queue_.empty()) {
    if (manager_.PrefetchOutstanding() >= options_.budget) {
      ++stats_.budget_deferred;
      break;
    }
    // AIMD gate: speculative traffic is the first thing to yield when the
    // stores shed load; deferred entries stay queued for the next drain.
    if (drain_pacer_.enabled() && !drain_pacer_.Admit()) {
      ++stats_.paced_deferred;
      break;
    }
    double headroom = rt_.heap().free_fraction();
    if (headroom < options_.stage_headroom) {
      ++stats_.headroom_blocked;
      break;
    }
    SwapClusterId id = queue_.front();
    queue_.pop_front();
    queued_.erase(id);
    if (manager_.StateOf(id) != swap::SwapState::kSwapped) continue;

    bool full_swap_in = options_.mode == PrefetchMode::kFull &&
                        headroom >= options_.swap_in_headroom;
    // Feedback via pushback-counter deltas (statuses fold shed fetches
    // into generic failures).
    const net::StoreClient::Stats* client = manager_.StoreClientStats();
    const uint64_t pushbacks_before =
        client != nullptr ? client->pushbacks : 0;
    Status status = full_swap_in ? manager_.SwapIn(id, /*prefetch=*/true)
                                 : manager_.PrefetchStage(id);
    if (drain_pacer_.enabled()) {
      if (client != nullptr && client->pushbacks > pushbacks_before)
        drain_pacer_.OnPushback();
      else if (status.ok())
        drain_pacer_.OnSuccess();
    }
    if (status.ok()) {
      if (full_swap_in) {
        ++stats_.speculative_swap_ins;
      } else {
        ++stats_.staged;
      }
    } else {
      ++stats_.errors;
      OBISWAP_LOG(kWarn) << "prefetch of swap-cluster " << id.ToString()
                         << " failed: " << status.ToString();
    }
  }
  in_drain_ = false;
}

}  // namespace obiswap::prefetch
