// Predictor: ranks the likely next swap-clusters after a demand fault.
//
// A thin policy layer over the FaultHistoryRecorder's transition graph: on
// each fault the prefetcher asks for the successors of the faulted cluster,
// and the predictor keeps only those whose confidence (edge share of the
// source's total outgoing weight) clears a threshold, capped at a small
// count. The threshold is the precision/recall dial: high values prefetch
// only near-certain successors (sequential scans), low values also chase
// branchy access patterns at the cost of wasted transfers.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "prefetch/fault_history.h"

namespace obiswap::prefetch {

class Predictor {
 public:
  struct Options {
    /// Minimum successor confidence to predict (0..1].
    double confidence_threshold = 0.4;
    /// At most this many predictions per fault.
    size_t max_predictions = 2;
  };

  explicit Predictor(const FaultHistoryRecorder& recorder)
      : Predictor(recorder, Options()) {}
  Predictor(const FaultHistoryRecorder& recorder, Options options)
      : recorder_(recorder), options_(options) {}

  /// Clusters likely to be entered after `from`, most likely first.
  std::vector<SwapClusterId> Predict(SwapClusterId from) const;

  void set_confidence_threshold(double threshold) {
    options_.confidence_threshold = threshold;
  }
  void set_max_predictions(size_t count) { options_.max_predictions = count; }
  const Options& options() const { return options_; }

 private:
  const FaultHistoryRecorder& recorder_;
  Options options_;
};

}  // namespace obiswap::prefetch
