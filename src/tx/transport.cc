#include "tx/transport.h"

#include "common/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::tx {

using runtime::Value;
using runtime::ValueKind;

namespace {

std::string ErrorResponse(StatusCode code, const std::string& message) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", StatusCodeName(code));
  response->SetAttr("message", message);
  return xml::Write(*response);
}

Result<Value> DecodeValue(const xml::Node& set_el) {
  OBISWAP_ASSIGN_OR_RETURN(std::string kind, set_el.GetAttr("t"));
  std::string text = set_el.InnerText();
  if (kind == "nil") return Value::Nil();
  if (kind == "int") {
    OBISWAP_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(text));
    return Value::Int(parsed);
  }
  if (kind == "real") {
    OBISWAP_ASSIGN_OR_RETURN(double parsed, ParseDouble(text));
    return Value::Real(parsed);
  }
  if (kind == "str") return Value::Str(std::move(text));
  return DataLossError("bad value kind '" + kind + "' in commit envelope");
}

}  // namespace

std::string EncodeCommitRequest(const WriteSet& write_set) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "commit");
  request->SetIntAttr("tx", static_cast<int64_t>(write_set.tx_id));
  for (const auto& [oid, version] : write_set.validations) {
    xml::Node* val_el = request->AddElement("val");
    val_el->SetIntAttr("oid", static_cast<int64_t>(oid.value()));
    val_el->SetIntAttr("v", static_cast<int64_t>(version));
  }
  for (const FieldUpdate& update : write_set.updates) {
    xml::Node* set_el = request->AddElement("set");
    set_el->SetIntAttr("oid", static_cast<int64_t>(update.oid.value()));
    set_el->SetAttr("f", update.field);
    set_el->SetAttr("t", ValueKindName(update.new_value.kind()));
    switch (update.new_value.kind()) {
      case ValueKind::kNil:
        break;
      case ValueKind::kInt:
        set_el->AddText(std::to_string(update.new_value.as_int()));
        break;
      case ValueKind::kReal:
        set_el->AddText(StrFormat("%.17g", update.new_value.as_real()));
        break;
      case ValueKind::kStr:
        set_el->AddText(update.new_value.as_str());
        break;
      case ValueKind::kRef:
        break;  // rejected earlier by TxManager::Write
    }
  }
  return xml::Write(*request);
}

std::string TxService::Handle(const std::string& request_xml) {
  auto parsed = xml::Parse(request_xml);
  if (!parsed.ok())
    return ErrorResponse(StatusCode::kInvalidArgument,
                         parsed.status().message());
  const xml::Node& request = **parsed;
  const std::string* op = request.FindAttr("op");
  if (request.name() != "request" || op == nullptr || *op != "commit")
    return ErrorResponse(StatusCode::kInvalidArgument, "bad commit request");

  WriteSet write_set;
  write_set.tx_id = static_cast<uint64_t>(
      request.GetIntAttrOr("tx", 0).ok() ? *request.GetIntAttrOr("tx", 0)
                                         : 0);
  for (const xml::Node* val_el : request.FindChildren("val")) {
    auto oid = val_el->GetIntAttr("oid");
    auto version = val_el->GetIntAttr("v");
    if (!oid.ok() || !version.ok())
      return ErrorResponse(StatusCode::kInvalidArgument, "bad <val>");
    write_set.validations.emplace_back(
        ObjectId(static_cast<uint64_t>(*oid)),
        static_cast<uint64_t>(*version));
  }
  for (const xml::Node* set_el : request.FindChildren("set")) {
    auto oid = set_el->GetIntAttr("oid");
    auto field = set_el->GetAttr("f");
    if (!oid.ok() || !field.ok())
      return ErrorResponse(StatusCode::kInvalidArgument, "bad <set>");
    Result<Value> value = DecodeValue(*set_el);
    if (!value.ok())
      return ErrorResponse(value.status().code(), value.status().message());
    write_set.updates.push_back(FieldUpdate{
        ObjectId(static_cast<uint64_t>(*oid)), *field, *std::move(value)});
  }

  Result<CommitResult> outcome = master_.Commit(write_set);
  if (!outcome.ok())
    return ErrorResponse(outcome.status().code(), outcome.status().message());
  auto response = xml::Node::Element("response");
  response->SetAttr("status", "OK");
  response->SetIntAttr("committed", outcome->committed ? 1 : 0);
  for (ObjectId oid : outcome->conflicts) {
    response->AddElement("conflict")->SetIntAttr(
        "oid", static_cast<int64_t>(oid.value()));
  }
  return xml::Write(*response);
}

CommitFn NetworkCommit(net::Network& network, DeviceId self,
                       DeviceId server_device, TxService& service,
                       int max_attempts) {
  return [&network, self, server_device, &service,
          max_attempts](const WriteSet& write_set) -> Result<CommitResult> {
    std::string request = EncodeCommitRequest(write_set);
    Status last = UnavailableError("no attempt made");
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      Result<uint64_t> out =
          network.Transfer(self, server_device, request.size());
      if (!out.ok()) {
        last = out.status();
        if (last.code() != StatusCode::kUnavailable) return last;
        continue;
      }
      // NOTE: commits are NOT idempotent like store operations; a real
      // system would add a tx-id replay cache server-side. The simulated
      // request channel either delivers or reports loss before dispatch,
      // so retrying the request leg is safe. A response-leg loss after a
      // successful apply is surfaced as kUnavailable with the transaction
      // left open (the tx-id lets the application reconcile).
      std::string response_xml = service.Handle(request);
      Result<uint64_t> back =
          network.Transfer(server_device, self, response_xml.size());
      if (!back.ok()) {
        last = back.status();
        return UnavailableError(
            "commit outcome unknown: response lost (tx " +
            std::to_string(write_set.tx_id) + ")");
      }
      OBISWAP_ASSIGN_OR_RETURN(auto doc, xml::Parse(response_xml));
      const std::string* status_name = doc->FindAttr("status");
      if (status_name == nullptr || *status_name != "OK") {
        const std::string* message = doc->FindAttr("message");
        return InternalError(message != nullptr ? *message : "remote error");
      }
      CommitResult result;
      OBISWAP_ASSIGN_OR_RETURN(int64_t committed,
                               doc->GetIntAttr("committed"));
      result.committed = committed != 0;
      for (const xml::Node* conflict_el : doc->FindChildren("conflict")) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t oid, conflict_el->GetIntAttr("oid"));
        result.conflicts.push_back(ObjectId(static_cast<uint64_t>(oid)));
      }
      return result;
    }
    return last;
  };
}

}  // namespace obiswap::tx
