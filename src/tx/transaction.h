// Transactional Support (OBIWAN middleware component, paper Figure 1;
// design follows the loosely-coupled replicated-object transactions of
// Veiga et al., ICPADS 2004 [13]).
//
// Mobile devices work disconnected on replicas, so transactions are
// optimistic and local-first:
//
//   * a device transaction tracks reads (object version observed at
//     replication time) and writes (with undo entries);
//   * Abort rolls the replica updates back from the undo log;
//   * Commit ships the write-set to the master, which validates every
//     written object's version (first-committer-wins) and applies the
//     updates atomically, bumping versions;
//   * a conflicting commit fails with kFailedPrecondition and the local
//     transaction is rolled back, leaving the replicas consistent with
//     what was last replicated.
//
// Versions live on the master (TxMaster) and travel to devices with each
// replicated cluster; swapped-out replicas keep their versions because the
// version table is middleware state, not object state.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "replication/device.h"
#include "replication/server.h"
#include "runtime/runtime.h"
#include "swap/manager.h"

namespace obiswap::tx {

/// One field update inside a write-set.
struct FieldUpdate {
  ObjectId oid;
  std::string field;
  runtime::Value new_value;  ///< kRef updates are not supported across the
                             ///< wire; structural edits replicate instead
};

/// What the device sends at commit time.
struct WriteSet {
  uint64_t tx_id = 0;
  /// (oid, version the device's replica was based on).
  std::vector<std::pair<ObjectId, uint64_t>> validations;
  std::vector<FieldUpdate> updates;
};

/// Outcome of a master-side commit.
struct CommitResult {
  bool committed = false;
  /// Objects whose validation failed (empty when committed).
  std::vector<ObjectId> conflicts;
};

/// Master-side transaction authority: version table + atomic apply.
class TxMaster : public replication::ReplicationServer::ShipObserver {
 public:
  struct Stats {
    uint64_t commits = 0;
    uint64_t conflicts = 0;
    uint64_t updates_applied = 0;
  };

  /// Observes the replication server so every shipped object gets a
  /// version entry (version 1 on first ship). An existing ship observer is
  /// chained, so TxMaster can coexist with the DGC server: install TxMaster
  /// *after* DgcServer and it forwards to it.
  explicit TxMaster(replication::ReplicationServer& server);
  ~TxMaster() override;

  /// Current version of a master object (0 if never shipped/updated).
  uint64_t VersionOf(ObjectId oid) const;

  /// Validates and applies a write-set atomically. On any version mismatch
  /// nothing is applied and the conflicting oids are returned.
  Result<CommitResult> Commit(const WriteSet& write_set);

  // ShipObserver (chains to the previously installed observer).
  void OnShipped(DeviceId device,
                 const std::vector<runtime::Object*>& shipped) override;
  void OnReleased(DeviceId device,
                  const std::vector<ObjectId>& released) override;

  const Stats& stats() const { return stats_; }

 private:
  runtime::Object* FindByOid(ObjectId oid);

  replication::ReplicationServer& server_;
  replication::ReplicationServer::ShipObserver* chained_;
  std::unordered_map<ObjectId, uint64_t> versions_;
  Stats stats_;
};

/// How a device commit reaches the master (direct or via the bridge).
using CommitFn = std::function<Result<CommitResult>(const WriteSet&)>;

/// In-process commit path.
CommitFn DirectCommit(TxMaster& master);

/// Device-side transaction manager. One open transaction at a time
/// (matching the single-threaded device runtime).
class TxManager {
 public:
  struct Stats {
    uint64_t begun = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t conflicted = 0;
  };

  /// `swap` is optional; when present, (a) proxies resolve through the
  /// swapping layer (faulting swapped clusters in on write), and (b) the
  /// manager's victim filter pins clusters with uncommitted writes so
  /// swap-out cannot strand an undo log (the swapped XML would otherwise
  /// capture dirty state the abort could no longer reach).
  TxManager(runtime::Runtime& rt, replication::DeviceEndpoint& endpoint,
            swap::SwappingManager* swap, CommitFn commit);
  ~TxManager();

  /// Records the replica versions that arrive with replicated clusters.
  /// (Wired automatically when constructed with a DeviceEndpoint whose bus
  /// publishes cluster events; can also be fed manually in tests.)
  void NoteReplicaVersion(ObjectId oid, uint64_t version);
  uint64_t ReplicaVersionOf(ObjectId oid) const;

  /// Starts a transaction. kFailedPrecondition if one is already open.
  Status Begin();
  bool in_transaction() const { return open_; }

  /// Transactional field write on a replica (or a proxy to one): applies
  /// locally and logs an undo entry + validation intent. Only value fields
  /// (int/real/str/nil) may be written transactionally.
  Status Write(runtime::Object* obj, const std::string& field,
               runtime::Value value);

  /// Transactional read (records the version for validation).
  Result<runtime::Value> Read(runtime::Object* obj, const std::string& field);

  /// Ships the write-set to the master; on conflict rolls back locally and
  /// returns kFailedPrecondition listing the first conflicting oid.
  Status Commit();

  /// Rolls back every local write.
  Status Abort();

  const Stats& stats() const { return stats_; }

 private:
  struct UndoEntry {
    runtime::WeakRef target;
    size_t slot;
    runtime::Value old_value;
  };

  /// Resolves proxies to the real replica; faults swapped clusters in.
  Result<runtime::Object*> ResolveReplica(runtime::Object* obj);
  void RollBack();

  runtime::Runtime& rt_;
  replication::DeviceEndpoint& endpoint_;
  swap::SwappingManager* swap_;
  CommitFn commit_;
  bool open_ = false;
  uint64_t next_tx_id_ = 1;
  WriteSet pending_;
  std::vector<UndoEntry> undo_;
  std::unordered_map<ObjectId, uint64_t> replica_versions_;
  Stats stats_;
};

}  // namespace obiswap::tx
