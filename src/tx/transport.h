// Transaction commit over the web-service bridge: the device's write-set
// travels as an XML envelope, like every other OBIWAN interaction.
#pragma once

#include <string>

#include "net/network.h"
#include "tx/transaction.h"

namespace obiswap::tx {

/// Server-side dispatcher for commit envelopes.
class TxService {
 public:
  explicit TxService(TxMaster& master) : master_(master) {}

  /// Handles one commit request; errors become response envelopes.
  std::string Handle(const std::string& request_xml);

 private:
  TxMaster& master_;
};

/// Encodes a write-set as a commit request envelope (exposed for tests).
std::string EncodeCommitRequest(const WriteSet& write_set);

/// Device-side CommitFn that tunnels through the simulated network.
CommitFn NetworkCommit(net::Network& network, DeviceId self,
                       DeviceId server_device, TxService& service,
                       int max_attempts = 3);

}  // namespace obiswap::tx
