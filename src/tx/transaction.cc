#include "tx/transaction.h"

#include <algorithm>
#include <unordered_set>

#include "swap/proxy.h"

namespace obiswap::tx {

using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using runtime::ValueKind;

// ---------------------------------------------------------------------------
// TxMaster
// ---------------------------------------------------------------------------

TxMaster::TxMaster(replication::ReplicationServer& server)
    : server_(server), chained_(server.ship_observer()) {
  server_.SetShipObserver(this);
  server_.SetVersionProvider([this](ObjectId oid) { return VersionOf(oid); });
}

TxMaster::~TxMaster() {
  server_.SetShipObserver(chained_);
  server_.SetVersionProvider(nullptr);
}

uint64_t TxMaster::VersionOf(ObjectId oid) const {
  auto it = versions_.find(oid);
  return it == versions_.end() ? 0 : it->second;
}

void TxMaster::OnShipped(DeviceId device,
                         const std::vector<Object*>& shipped) {
  for (Object* master : shipped) {
    versions_.emplace(master->oid(), 1);  // first ship seeds version 1
  }
  if (chained_ != nullptr) chained_->OnShipped(device, shipped);
}

void TxMaster::OnReleased(DeviceId device,
                          const std::vector<ObjectId>& released) {
  if (chained_ != nullptr) chained_->OnReleased(device, released);
}

Object* TxMaster::FindByOid(ObjectId oid) {
  Object* found = nullptr;
  server_.rt().heap().ForEachObject([&](Object* obj) {
    if (obj->oid() == oid) found = obj;
  });
  return found;
}

Result<CommitResult> TxMaster::Commit(const WriteSet& write_set) {
  CommitResult result;
  // Phase 1: validate every read/written version.
  for (const auto& [oid, version] : write_set.validations) {
    if (VersionOf(oid) != version) result.conflicts.push_back(oid);
  }
  if (!result.conflicts.empty()) {
    ++stats_.conflicts;
    result.committed = false;
    return result;
  }
  // Phase 2: locate every target (all-or-nothing before mutating).
  std::vector<Object*> targets;
  targets.reserve(write_set.updates.size());
  for (const FieldUpdate& update : write_set.updates) {
    if (update.new_value.is_ref())
      return InvalidArgumentError(
          "transactional writes are value-only (structural changes "
          "replicate through the object graph)");
    Object* target = FindByOid(update.oid);
    if (target == nullptr)
      return NotFoundError("no master object with oid " +
                           update.oid.ToString());
    targets.push_back(target);
  }
  // Phase 3: apply and bump versions.
  std::unordered_set<uint64_t> bumped;
  for (size_t i = 0; i < write_set.updates.size(); ++i) {
    const FieldUpdate& update = write_set.updates[i];
    OBISWAP_RETURN_IF_ERROR(server_.rt().SetField(
        targets[i], update.field, update.new_value));
    if (bumped.insert(update.oid.value()).second) ++versions_[update.oid];
    ++stats_.updates_applied;
  }
  ++stats_.commits;
  result.committed = true;
  return result;
}

CommitFn DirectCommit(TxMaster& master) {
  return [&master](const WriteSet& write_set) {
    return master.Commit(write_set);
  };
}

// ---------------------------------------------------------------------------
// TxManager
// ---------------------------------------------------------------------------

TxManager::TxManager(runtime::Runtime& rt,
                     replication::DeviceEndpoint& endpoint,
                     swap::SwappingManager* swap, CommitFn commit)
    : rt_(rt), endpoint_(endpoint), swap_(swap), commit_(std::move(commit)) {
  endpoint_.SetVersionSink([this](ObjectId oid, uint64_t version) {
    NoteReplicaVersion(oid, version);
  });
  if (swap_ != nullptr) {
    swap_->SetVictimFilter([this](SwapClusterId id) {
      if (!open_) return false;
      for (const auto& [oid, version] : pending_.validations) {
        (void)version;
        // Pin any cluster that holds a written replica.
        for (const UndoEntry& entry : undo_) {
          Object* target = entry.target->get();
          if (target != nullptr && target->swap_cluster() == id) return true;
        }
      }
      return false;
    });
  }
}

TxManager::~TxManager() {
  endpoint_.SetVersionSink(nullptr);
  if (swap_ != nullptr) swap_->SetVictimFilter(nullptr);
}

void TxManager::NoteReplicaVersion(ObjectId oid, uint64_t version) {
  replica_versions_[oid] = version;
}

uint64_t TxManager::ReplicaVersionOf(ObjectId oid) const {
  auto it = replica_versions_.find(oid);
  return it == replica_versions_.end() ? 0 : it->second;
}

Status TxManager::Begin() {
  if (open_)
    return FailedPreconditionError("a transaction is already open");
  open_ = true;
  pending_ = WriteSet{};
  pending_.tx_id = next_tx_id_++;
  undo_.clear();
  ++stats_.begun;
  return OkStatus();
}

Result<Object*> TxManager::ResolveReplica(Object* obj) {
  if (obj == nullptr) return InvalidArgumentError("null object");
  switch (obj->kind()) {
    case ObjectKind::kRegular:
      return obj;
    case ObjectKind::kSwapClusterProxy: {
      Object* target = swap::ProxyTarget(obj);
      if (target != nullptr && swap::IsReplacement(target)) {
        if (swap_ == nullptr)
          return FailedPreconditionError(
              "target cluster is swapped out and no swapping manager is "
              "attached");
        OBISWAP_RETURN_IF_ERROR(
            swap_->SwapIn(swap::ReplacementCluster(target)));
        target = swap::ProxyTarget(obj);
      }
      if (target == nullptr || target->kind() != ObjectKind::kRegular)
        return InternalError("proxy did not resolve to a replica");
      return target;
    }
    case ObjectKind::kReplicationProxy:
      return endpoint_.Materialize(
          ObjectId(static_cast<uint64_t>(obj->RawSlot(0).as_int())));
    case ObjectKind::kReplacement:
      return InvalidArgumentError("cannot write through a replacement");
  }
  return InvalidArgumentError("unknown object kind");
}

Status TxManager::Write(Object* obj, const std::string& field, Value value) {
  if (!open_) return FailedPreconditionError("no open transaction");
  if (value.is_ref())
    return InvalidArgumentError(
        "transactional writes are value-only (int/real/str/nil)");
  OBISWAP_ASSIGN_OR_RETURN(Object * replica, ResolveReplica(obj));
  size_t slot = replica->cls().FieldIndex(field);
  if (slot == runtime::ClassInfo::kNpos)
    return NotFoundError("no field '" + field + "' on class " +
                         replica->cls().name());

  // Capture the pre-image, apply (this also type-checks the value), and
  // only then log — a rejected write must leave no transaction residue.
  Value old_value = replica->RawSlot(slot);
  OBISWAP_RETURN_IF_ERROR(rt_.SetField(replica, field, value));

  UndoEntry entry;
  entry.target = rt_.heap().NewWeakRef(replica);
  entry.slot = slot;
  entry.old_value = std::move(old_value);
  undo_.push_back(std::move(entry));

  uint64_t base = ReplicaVersionOf(replica->oid());
  auto already = std::find_if(
      pending_.validations.begin(), pending_.validations.end(),
      [&](const auto& pair) { return pair.first == replica->oid(); });
  if (already == pending_.validations.end()) {
    pending_.validations.emplace_back(replica->oid(), base);
  }
  pending_.updates.push_back(
      FieldUpdate{replica->oid(), field, std::move(value)});
  return OkStatus();
}

Result<Value> TxManager::Read(Object* obj, const std::string& field) {
  if (!open_) return FailedPreconditionError("no open transaction");
  OBISWAP_ASSIGN_OR_RETURN(Object * replica, ResolveReplica(obj));
  auto already = std::find_if(
      pending_.validations.begin(), pending_.validations.end(),
      [&](const auto& pair) { return pair.first == replica->oid(); });
  if (already == pending_.validations.end()) {
    pending_.validations.emplace_back(replica->oid(),
                                      ReplicaVersionOf(replica->oid()));
  }
  return rt_.GetField(replica, field);
}

void TxManager::RollBack() {
  // Reverse order: later writes undone first.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    Object* target = it->target->get();
    if (target == nullptr) continue;  // replica died with its cluster pinned? defensive
    target->RawSlotMutable(it->slot) = it->old_value;
    rt_.heap().RefreshAccounting(target);
  }
  undo_.clear();
  pending_ = WriteSet{};
  open_ = false;
}

Status TxManager::Commit() {
  if (!open_) return FailedPreconditionError("no open transaction");
  if (pending_.updates.empty()) {
    // Read-only: nothing to validate remotely in this optimistic scheme.
    undo_.clear();
    pending_ = WriteSet{};
    open_ = false;
    ++stats_.committed;
    return OkStatus();
  }
  Result<CommitResult> outcome = commit_(pending_);
  if (!outcome.ok()) {
    // Transport failure: keep the transaction open so the caller can retry
    // commit when connectivity returns, or abort explicitly.
    return outcome.status();
  }
  if (!outcome->committed) {
    ++stats_.conflicted;
    std::string first = outcome->conflicts.empty()
                            ? "?"
                            : outcome->conflicts.front().ToString();
    RollBack();
    ++stats_.aborted;
    return FailedPreconditionError(
        "commit conflict: master object " + first +
        " changed since replication (transaction rolled back)");
  }
  // Success: the master bumped the versions of written objects; our
  // replicas carry the committed state, so advance their base versions.
  std::unordered_set<uint64_t> written;
  for (const FieldUpdate& update : pending_.updates) {
    if (written.insert(update.oid.value()).second) {
      ++replica_versions_[update.oid];
    }
  }
  undo_.clear();
  pending_ = WriteSet{};
  open_ = false;
  ++stats_.committed;
  return OkStatus();
}

Status TxManager::Abort() {
  if (!open_) return FailedPreconditionError("no open transaction");
  RollBack();
  ++stats_.aborted;
  return OkStatus();
}

}  // namespace obiswap::tx
