// XML serialization: Node tree → text, with escaping.
#pragma once

#include <string>
#include <string_view>

#include "xml/node.h"

namespace obiswap::xml {

struct WriteOptions {
  /// Indent children by two spaces per depth level; text nodes inline.
  bool pretty = false;
  /// Prepend `<?xml version="1.0" encoding="UTF-8"?>`.
  bool declaration = false;
};

/// Escapes `text` for use inside element content (&, <, >).
std::string EscapeText(std::string_view text);

/// Escapes `text` for use inside a double-quoted attribute value.
std::string EscapeAttr(std::string_view text);

/// Serializes the node tree. Text nodes are escaped; attribute order and
/// child order are preserved, so Write(Parse(Write(n))) is stable.
std::string Write(const Node& node, const WriteOptions& options = {});

}  // namespace obiswap::xml
