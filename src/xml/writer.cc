#include "xml/writer.h"

namespace obiswap::xml {

namespace {
void AppendCharRef(std::string* out, unsigned char c) {
  static const char kHex[] = "0123456789ABCDEF";
  *out += "&#x";
  if (c >= 0x10) *out += kHex[c >> 4];
  *out += kHex[c & 0xF];
  *out += ';';
}

void AppendEscaped(std::string* out, std::string_view text, bool attr) {
  for (char c : text) {
    switch (c) {
      case '&':
        *out += "&amp;";
        break;
      case '<':
        *out += "&lt;";
        break;
      case '>':
        *out += "&gt;";
        break;
      case '"':
        if (attr) {
          *out += "&quot;";
        } else {
          *out += c;
        }
        break;
      case '\'':
        if (attr) {
          *out += "&apos;";
        } else {
          *out += c;
        }
        break;
      default:
        // Control bytes (0x00–0x1F, 0x7F) go out as numeric character
        // references: raw they would either be eaten by whitespace-agnostic
        // parsing (\r, \t) or make the document unparseable (\x00), so a
        // string slot holding them would not survive write→parse. The
        // parser decodes &#xNN; below 0x80 to the single raw byte, so every
        // byte value round-trips exactly. Bytes ≥ 0x80 stay raw — the
        // parser would re-encode a numeric reference for them as multi-byte
        // UTF-8, which is NOT byte-identity.
        if (static_cast<unsigned char>(c) < 0x20 || c == '\x7F') {
          AppendCharRef(out, static_cast<unsigned char>(c));
        } else {
          *out += c;
        }
    }
  }
}

void WriteNode(const Node& node, const WriteOptions& options, int depth,
               std::string* out) {
  if (node.is_text()) {
    AppendEscaped(out, node.text(), /*attr=*/false);
    return;
  }
  auto indent = [&](int d) {
    if (options.pretty) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  indent(depth);
  *out += '<';
  *out += node.name();
  for (const Attr& attr : node.attrs()) {
    *out += ' ';
    *out += attr.name;
    *out += "=\"";
    AppendEscaped(out, attr.value, /*attr=*/true);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';
  bool has_element_children = false;
  for (const auto& child : node.children()) {
    if (!child->is_text()) has_element_children = true;
  }
  if (options.pretty && has_element_children) *out += '\n';
  for (const auto& child : node.children()) {
    WriteNode(*child, options, depth + 1, out);
  }
  if (options.pretty && has_element_children) indent(depth);
  *out += "</";
  *out += node.name();
  *out += '>';
  if (options.pretty) *out += '\n';
}
}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(&out, text, /*attr=*/false);
  return out;
}

std::string EscapeAttr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  AppendEscaped(&out, text, /*attr=*/true);
  return out;
}

std::string Write(const Node& node, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += '\n';
  }
  WriteNode(node, options, 0, &out);
  return out;
}

}  // namespace obiswap::xml
