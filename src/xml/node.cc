#include "xml/node.h"

#include "common/string_util.h"

namespace obiswap::xml {

std::unique_ptr<Node> Node::Element(std::string name) {
  auto node = std::unique_ptr<Node>(new Node());
  node->name_ = std::move(name);
  return node;
}

std::unique_ptr<Node> Node::Text(std::string text) {
  auto node = std::unique_ptr<Node>(new Node());
  node->text_ = std::move(text);
  return node;
}

void Node::SetAttr(std::string_view name, std::string_view value) {
  for (auto& attr : attrs_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attrs_.push_back(Attr{std::string(name), std::string(value)});
}

void Node::SetIntAttr(std::string_view name, int64_t value) {
  SetAttr(name, std::to_string(value));
}

const std::string* Node::FindAttr(std::string_view name) const {
  for (const auto& attr : attrs_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

Result<std::string> Node::GetAttr(std::string_view name) const {
  const std::string* value = FindAttr(name);
  if (value == nullptr)
    return NotFoundError("missing attribute '" + std::string(name) +
                         "' on <" + name_ + ">");
  return *value;
}

Result<int64_t> Node::GetIntAttr(std::string_view name) const {
  OBISWAP_ASSIGN_OR_RETURN(std::string text, GetAttr(name));
  return ParseInt64(text);
}

Result<int64_t> Node::GetIntAttrOr(std::string_view name,
                                   int64_t fallback) const {
  const std::string* value = FindAttr(name);
  if (value == nullptr) return fallback;
  return ParseInt64(*value);
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

void Node::AddText(std::string text) { AddChild(Text(std::move(text))); }

const Node* Node::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (!child->is_text() && child->name() == name) return child.get();
  }
  return nullptr;
}

Node* Node::FindChild(std::string_view name) {
  return const_cast<Node*>(
      static_cast<const Node*>(this)->FindChild(name));
}

std::vector<const Node*> Node::FindChildren(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& child : children_) {
    if (!child->is_text() && child->name() == name) out.push_back(child.get());
  }
  return out;
}

Result<const Node*> Node::GetChild(std::string_view name) const {
  const Node* child = FindChild(name);
  if (child == nullptr)
    return NotFoundError("missing child <" + std::string(name) + "> in <" +
                         name_ + ">");
  return child;
}

std::string Node::InnerText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) out += child->text();
  }
  return out;
}

size_t Node::SubtreeSize() const {
  size_t count = 1;
  for (const auto& child : children_) count += child->SubtreeSize();
  return count;
}

}  // namespace obiswap::xml
