// XML document model.
//
// The paper's swapped clusters, policy files and the web-service bridge all
// speak XML ("the receiving device ... simply must be able to store and
// provide XML text"), so this is a foundational substrate. The model is a
// plain ordered tree: elements with attributes, element children and text
// children.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace obiswap::xml {

/// One attribute on an element. Order is preserved.
struct Attr {
  std::string name;
  std::string value;
};

/// An element node (or a text node when `is_text()` — text nodes have empty
/// name and carry their payload in `text`).
class Node {
 public:
  /// Creates an element node.
  static std::unique_ptr<Node> Element(std::string name);
  /// Creates a text node.
  static std::unique_ptr<Node> Text(std::string text);

  bool is_text() const { return name_.empty(); }
  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- attributes -----------------------------------------------------
  const std::vector<Attr>& attrs() const { return attrs_; }
  /// Sets (or replaces) an attribute.
  void SetAttr(std::string_view name, std::string_view value);
  void SetIntAttr(std::string_view name, int64_t value);
  /// Returns the attribute value or nullptr if absent.
  const std::string* FindAttr(std::string_view name) const;
  /// Attribute as string; error if absent.
  Result<std::string> GetAttr(std::string_view name) const;
  /// Attribute parsed as integer; error if absent or malformed.
  Result<int64_t> GetIntAttr(std::string_view name) const;
  /// Attribute parsed as integer with a default when absent.
  Result<int64_t> GetIntAttrOr(std::string_view name, int64_t fallback) const;

  // --- children -------------------------------------------------------
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  /// Appends a child node and returns a borrowed pointer to it.
  Node* AddChild(std::unique_ptr<Node> child);
  /// Convenience: appends `<name>` and returns it.
  Node* AddElement(std::string name);
  /// Convenience: appends a text child.
  void AddText(std::string text);

  /// First element child with the given name, or nullptr.
  const Node* FindChild(std::string_view name) const;
  Node* FindChild(std::string_view name);
  /// All element children with the given name.
  std::vector<const Node*> FindChildren(std::string_view name) const;
  /// First element child with the given name; error if absent.
  Result<const Node*> GetChild(std::string_view name) const;

  /// Concatenation of all direct text children.
  std::string InnerText() const;

  /// Number of nodes in this subtree (for size accounting in tests).
  size_t SubtreeSize() const;

 private:
  Node() = default;

  std::string name_;  // empty for text nodes
  std::string text_;  // payload for text nodes
  std::vector<Attr> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace obiswap::xml
