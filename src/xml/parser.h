// Recursive-descent XML parser.
//
// Supports the subset obiswap emits plus what hand-written policy files
// need: elements, attributes (single or double quoted), text, comments,
// CDATA sections, processing instructions / XML declaration, and the five
// predefined entities plus numeric character references.
#pragma once

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xml/node.h"

namespace obiswap::xml {

/// Parses a complete document: optional prolog followed by exactly one root
/// element. Errors carry a line number.
Result<std::unique_ptr<Node>> Parse(std::string_view input);

}  // namespace obiswap::xml
