#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace obiswap::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<std::unique_ptr<Node>> ParseDocument() {
    SkipProlog();
    if (AtEnd()) return Error("document has no root element");
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("trailing content after root element");
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek())))
      Advance();
  }

  Status Error(const std::string& message) const {
    return DataLossError("xml parse error at line " + std::to_string(line_) +
                         ": " + message);
  }

  Status SkipComment() {
    // Called with "<!--" already consumed.
    while (!AtEnd()) {
      if (Consume("-->")) return OkStatus();
      Advance();
    }
    return Error("unterminated comment");
  }

  Status SkipPi() {
    // Called with "<?" already consumed.
    while (!AtEnd()) {
      if (Consume("?>")) return OkStatus();
      Advance();
    }
    return Error("unterminated processing instruction");
  }

  void SkipProlog() {
    // XML declaration, comments, PIs, DOCTYPE (skipped shallowly).
    for (;;) {
      SkipWhitespace();
      if (Consume("<?")) {
        if (!SkipPi().ok()) return;
      } else if (Consume("<!--")) {
        if (!SkipComment().ok()) return;
      } else if (Consume("<!DOCTYPE")) {
        while (!AtEnd() && Peek() != '>') Advance();
        if (!AtEnd()) Advance();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<!--")) {
        if (!SkipComment().ok()) return;
      } else if (Consume("<?")) {
        if (!SkipPi().ok()) return;
      } else {
        return;
      }
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntity() {
    // Called with '&' as current char.
    Advance();  // '&'
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';') {
      if (pos_ - start > 10) return Error("entity too long");
      Advance();
    }
    if (AtEnd()) return Error("unterminated entity");
    std::string_view entity = input_.substr(start, pos_ - start);
    Advance();  // ';'
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "amp") return std::string("&");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string_view digits = entity.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Error("empty character reference");
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return Error("bad character reference");
        }
        code = code * static_cast<unsigned long>(base) +
               static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) return Error("character reference out of range");
      }
      // Encode as UTF-8.
      std::string out;
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      }
      return out;
    }
    return Error("unknown entity '&" + std::string(entity) + ";'");
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\''))
      return Error("expected quoted attribute value");
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        OBISWAP_ASSIGN_OR_RETURN(std::string decoded, DecodeEntity());
        value += decoded;
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else {
        value += Peek();
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return value;
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    OBISWAP_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto node = Node::Element(name);
    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + name + ">");
      if (Consume("/>")) return node;
      if (Consume(">")) break;
      OBISWAP_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      OBISWAP_ASSIGN_OR_RETURN(std::string attr_value, ParseAttrValue());
      if (node->FindAttr(attr_name) != nullptr)
        return Error("duplicate attribute '" + attr_name + "'");
      node->SetAttr(attr_name, attr_value);
    }
    // Content.
    std::string text;
    auto flush_text = [&]() {
      if (!text.empty()) {
        node->AddText(std::move(text));
        text.clear();
      }
    };
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (Peek() == '<') {
        if (Consume("</")) {
          flush_text();
          OBISWAP_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          if (close_name != name)
            return Error("mismatched close tag </" + close_name +
                         "> for <" + name + ">");
          SkipWhitespace();
          if (!Consume(">")) return Error("expected '>' in close tag");
          return node;
        }
        if (Consume("<!--")) {
          OBISWAP_RETURN_IF_ERROR(SkipComment());
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t start = pos_;
          for (;;) {
            if (AtEnd()) return Error("unterminated CDATA");
            if (input_.substr(pos_).substr(0, 3) == "]]>") break;
            Advance();
          }
          text += input_.substr(start, pos_ - start);
          Consume("]]>");
          continue;
        }
        if (PeekAt(1) == '?') {
          Consume("<?");
          OBISWAP_RETURN_IF_ERROR(SkipPi());
          continue;
        }
        flush_text();
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Node> child, ParseElement());
        node->AddChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        OBISWAP_ASSIGN_OR_RETURN(std::string decoded, DecodeEntity());
        text += decoded;
        continue;
      }
      text += Peek();
      Advance();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::unique_ptr<Node>> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

}  // namespace obiswap::xml
