#include "policy/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "xml/node.h"
#include "xml/parser.h"

namespace obiswap::policy {

PolicyEngine::PolicyEngine(context::EventBus& bus,
                           context::PropertyRegistry& props)
    : bus_(bus), props_(props) {
  bus_token_ = bus_.SubscribeAll(
      [this](const context::Event& event) { OnEvent(event); });
}

PolicyEngine::~PolicyEngine() { bus_.Unsubscribe(bus_token_); }

Status PolicyEngine::RegisterAction(const std::string& name,
                                    ActionFn action) {
  if (actions_.count(name) > 0)
    return AlreadyExistsError("action '" + name + "' already registered");
  actions_.emplace(name, std::move(action));
  return OkStatus();
}

Status PolicyEngine::AddRule(PolicyRule rule) {
  if (rule.on_event.empty())
    return InvalidArgumentError("rule '" + rule.name + "' has no event");
  if (actions_.count(rule.action) == 0)
    return NotFoundError("rule '" + rule.name + "' names unknown action '" +
                         rule.action + "'");
  rules_.push_back(std::move(rule));
  // Keep rules ordered: higher priority first (stable for equal priority).
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const PolicyRule& a, const PolicyRule& b) {
                     return a.priority > b.priority;
                   });
  return OkStatus();
}

Result<size_t> PolicyEngine::LoadXml(const std::string& xml_text) {
  OBISWAP_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  if (doc->name() != "policies")
    return InvalidArgumentError("expected <policies> root");
  size_t added = 0;
  for (const xml::Node* policy_el : doc->FindChildren("policy")) {
    PolicyRule rule;
    OBISWAP_ASSIGN_OR_RETURN(rule.name, policy_el->GetAttr("name"));
    OBISWAP_ASSIGN_OR_RETURN(rule.on_event, policy_el->GetAttr("on"));
    OBISWAP_ASSIGN_OR_RETURN(int64_t priority,
                             policy_el->GetIntAttrOr("priority", 0));
    rule.priority = static_cast<int>(priority);
    if (const std::string* when = policy_el->FindAttr("when");
        when != nullptr) {
      rule.condition_text = *when;
      OBISWAP_ASSIGN_OR_RETURN(rule.condition, ParseExpr(*when));
    }
    const xml::Node* action_el = policy_el->FindChild("action");
    if (action_el == nullptr)
      return InvalidArgumentError("policy '" + rule.name +
                                  "' has no <action>");
    OBISWAP_ASSIGN_OR_RETURN(rule.action, action_el->GetAttr("name"));
    for (const xml::Node* param_el : action_el->FindChildren("param")) {
      OBISWAP_ASSIGN_OR_RETURN(std::string key, param_el->GetAttr("name"));
      OBISWAP_ASSIGN_OR_RETURN(std::string value,
                               param_el->GetAttr("value"));
      rule.params[key] = value;
    }
    OBISWAP_RETURN_IF_ERROR(AddRule(std::move(rule)));
    ++added;
  }
  return added;
}

void PolicyEngine::OnEvent(const context::Event& event) {
  for (const PolicyRule& rule : rules_) {
    if (rule.on_event != event.type()) continue;
    ++stats_.rules_evaluated;
    if (rule.condition != nullptr) {
      Result<double> value = rule.condition->Eval(props_);
      if (!value.ok()) {
        ++stats_.condition_errors;
        OBISWAP_LOG(kWarn) << "policy '" << rule.name
                           << "' condition error: "
                           << value.status().ToString();
        continue;
      }
      if (*value == 0.0) {
        ++stats_.conditions_false;
        continue;
      }
    }
    auto it = actions_.find(rule.action);
    OBISWAP_CHECK(it != actions_.end());  // enforced by AddRule
    ++stats_.actions_fired;
    Status status = it->second(event, rule.params);
    if (!status.ok()) {
      ++stats_.action_failures;
      OBISWAP_LOG(kWarn) << "policy '" << rule.name << "' action '"
                         << rule.action << "' failed: " << status.ToString();
    }
  }
}

}  // namespace obiswap::policy
