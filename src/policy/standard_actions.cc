#include "policy/standard_actions.h"

#include "common/string_util.h"

namespace obiswap::policy {

namespace {
Result<int64_t> RequiredIntParam(const ActionParams& params,
                                 const std::string& name) {
  auto it = params.find(name);
  if (it == params.end())
    return InvalidArgumentError("missing action param '" + name + "'");
  return ParseInt64(it->second);
}

Result<std::string> RequiredStringParam(const ActionParams& params,
                                        const std::string& name) {
  auto it = params.find(name);
  if (it == params.end())
    return InvalidArgumentError("missing action param '" + name + "'");
  return it->second;
}
}  // namespace

Status RegisterSwapActions(PolicyEngine& engine, runtime::Runtime& rt,
                           swap::SwappingManager& manager) {
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "swap-out-victim",
      [&manager](const context::Event&, const ActionParams&) {
        return manager.SwapOutVictim().status();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "swap-out",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t cluster,
                                 RequiredIntParam(params, "cluster"));
        return manager.SwapOut(SwapClusterId(static_cast<uint32_t>(cluster)))
            .status();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "swap-in",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t cluster,
                                 RequiredIntParam(params, "cluster"));
        return manager.SwapIn(SwapClusterId(static_cast<uint32_t>(cluster)));
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "collect", [&rt](const context::Event&, const ActionParams&) {
        rt.heap().Collect();
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-replication-factor",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t factor,
                                 RequiredIntParam(params, "factor"));
        if (factor <= 0)
          return InvalidArgumentError("factor must be positive");
        manager.set_replication_factor(static_cast<size_t>(factor));
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-swap-cache-bytes",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t bytes,
                                 RequiredIntParam(params, "bytes"));
        if (bytes < 0)
          return InvalidArgumentError("bytes must be non-negative");
        manager.set_swap_in_cache_bytes(static_cast<size_t>(bytes));
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-telemetry",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        manager.telemetry().set_enabled(enabled != 0);
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "dump-trace",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(std::string path,
                                 RequiredStringParam(params, "path"));
        return manager.telemetry().DumpTrace(path);
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-brownout",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        if (enabled != 0)
          manager.EnterBrownout("policy");
        else
          manager.ExitBrownout();
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-hedged-fetch",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        manager.set_hedged_fetch(enabled != 0);
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-op-deadline",
      [&manager](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t us, RequiredIntParam(params, "us"));
        if (us < 0) return InvalidArgumentError("us must be non-negative");
        manager.set_op_deadline_us(static_cast<uint64_t>(us));
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-wire-format",
      [&manager](const context::Event&,
                 const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string format,
                                 RequiredStringParam(params, "format"));
        OBISWAP_RETURN_IF_ERROR(manager.set_wire_format(format));
        // Optional: flip delta swap-out in the same action (deltas only
        // take effect on the binary format anyway).
        if (auto it = params.find("delta"); it != params.end()) {
          OBISWAP_ASSIGN_OR_RETURN(int64_t delta, ParseInt64(it->second));
          manager.set_delta_swap_out(delta != 0);
        }
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "inject-fault",
      [&manager](const context::Event&,
                 const ActionParams& params) -> Status {
        swap::FaultInjector* faults = manager.fault_injector();
        if (faults == nullptr)
          return FailedPreconditionError(
              "no fault injector attached to the swapping manager");
        OBISWAP_ASSIGN_OR_RETURN(std::string point,
                                 RequiredStringParam(params, "point"));
        OBISWAP_ASSIGN_OR_RETURN(std::string kind_name,
                                 RequiredStringParam(params, "kind"));
        OBISWAP_ASSIGN_OR_RETURN(swap::FaultKind kind,
                                 swap::ParseFaultKind(kind_name));
        int64_t nth = 1;
        if (auto it = params.find("nth"); it != params.end()) {
          OBISWAP_ASSIGN_OR_RETURN(nth, ParseInt64(it->second));
        }
        if (nth <= 0) return InvalidArgumentError("nth must be positive");
        int64_t delay_us = 0;
        if (auto it = params.find("delay_us"); it != params.end()) {
          OBISWAP_ASSIGN_OR_RETURN(delay_us, ParseInt64(it->second));
        }
        if (delay_us < 0)
          return InvalidArgumentError("delay_us must be non-negative");
        faults->Arm(std::move(point), kind, static_cast<uint64_t>(nth),
                    static_cast<uint64_t>(delay_us));
        return OkStatus();
      }));
  return OkStatus();
}

Status RegisterPrefetchActions(PolicyEngine& engine,
                               prefetch::Prefetcher& prefetcher) {
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-prefetch-budget",
      [&prefetcher](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t budget,
                                 RequiredIntParam(params, "budget"));
        if (budget < 0)
          return InvalidArgumentError("budget must be non-negative");
        prefetcher.set_budget(static_cast<size_t>(budget));
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-prefetch-mode",
      [&prefetcher](const context::Event&,
                    const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string mode_name,
                                 RequiredStringParam(params, "mode"));
        OBISWAP_ASSIGN_OR_RETURN(prefetch::PrefetchMode mode,
                                 prefetch::ParsePrefetchMode(mode_name));
        prefetcher.set_mode(mode);
        return OkStatus();
      }));
  return OkStatus();
}

Status RegisterTierActions(PolicyEngine& engine, tier::TierManager& tiers) {
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-tier-bytes",
      [&tiers](const context::Event&, const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string which,
                                 RequiredStringParam(params, "tier"));
        OBISWAP_ASSIGN_OR_RETURN(int64_t bytes,
                                 RequiredIntParam(params, "bytes"));
        if (bytes < 0) return InvalidArgumentError("bytes must be non-negative");
        if (which == "ram") {
          tiers.set_ram_bytes(static_cast<size_t>(bytes));
        } else if (which == "flash") {
          tiers.set_flash_slots(static_cast<size_t>(bytes) /
                                tiers.flash_slot_bytes());
        } else {
          return InvalidArgumentError("tier must be 'ram' or 'flash', got '" +
                                      which + "'");
        }
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-tier-mode",
      [&tiers](const context::Event&, const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string mode_name,
                                 RequiredStringParam(params, "mode"));
        OBISWAP_ASSIGN_OR_RETURN(tier::TierMode mode,
                                 tier::ParseTierMode(mode_name));
        tiers.set_mode(mode);
        return OkStatus();
      }));
  return OkStatus();
}

Status RegisterFleetActions(PolicyEngine& engine,
                            swap::SwappingManager& manager,
                            fleet::PlacementDirectory& directory) {
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-placement-mode",
      [&manager](const context::Event&,
                 const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string mode,
                                 RequiredStringParam(params, "mode"));
        if (mode == "directory") {
          if (manager.placement_directory() == nullptr) {
            return FailedPreconditionError(
                "no placement directory attached to the manager");
          }
          manager.set_placement_via_directory(true);
        } else if (mode == "walk") {
          manager.set_placement_via_directory(false);
        } else {
          return InvalidArgumentError(
              "mode must be 'directory' or 'walk', got '" + mode + "'");
        }
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-fleet",
      [&directory](const context::Event&,
                   const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(std::string op,
                                 RequiredStringParam(params, "op"));
        OBISWAP_ASSIGN_OR_RETURN(int64_t store,
                                 RequiredIntParam(params, "store"));
        if (store < 0) return InvalidArgumentError("store must be >= 0");
        DeviceId device(static_cast<uint32_t>(store));
        if (op == "join") {
          double weight = 1.0;
          auto it = params.find("weight");
          if (it != params.end()) {
            OBISWAP_ASSIGN_OR_RETURN(int64_t parsed,
                                     RequiredIntParam(params, "weight"));
            if (parsed <= 0)
              return InvalidArgumentError("weight must be positive");
            weight = static_cast<double>(parsed);
          }
          directory.AddStore(device, weight);
        } else if (op == "leave") {
          directory.RemoveStore(device);
        } else if (op == "weight") {
          OBISWAP_ASSIGN_OR_RETURN(int64_t weight,
                                   RequiredIntParam(params, "weight"));
          if (weight <= 0)
            return InvalidArgumentError("weight must be positive");
          if (!directory.Contains(device))
            return NotFoundError("store " + device.ToString() +
                                 " not in the fleet view");
          directory.SetWeight(device, static_cast<double>(weight));
        } else if (op == "healthy") {
          OBISWAP_ASSIGN_OR_RETURN(int64_t healthy,
                                   RequiredIntParam(params, "healthy"));
          if (!directory.Contains(device))
            return NotFoundError("store " + device.ToString() +
                                 " not in the fleet view");
          directory.SetHealthy(device, healthy != 0);
        } else {
          return InvalidArgumentError(
              "op must be 'join', 'leave', 'weight' or 'healthy', got '" +
              op + "'");
        }
        return OkStatus();
      }));
  return OkStatus();
}

Status RegisterOverloadActions(PolicyEngine& engine, net::Discovery& discovery,
                               net::StoreClient& client) {
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-store-queue",
      [&discovery](const context::Event&,
                   const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        net::StoreNode::QueueOptions queue;
        queue.enabled = enabled != 0;
        if (params.count("concurrency") > 0) {
          OBISWAP_ASSIGN_OR_RETURN(int64_t concurrency,
                                   RequiredIntParam(params, "concurrency"));
          if (concurrency <= 0)
            return InvalidArgumentError("concurrency must be positive");
          queue.concurrency = static_cast<size_t>(concurrency);
        }
        if (params.count("queue_limit") > 0) {
          OBISWAP_ASSIGN_OR_RETURN(int64_t limit,
                                   RequiredIntParam(params, "queue_limit"));
          if (limit < 0)
            return InvalidArgumentError("queue_limit must be >= 0");
          queue.queue_limit = static_cast<size_t>(limit);
        }
        if (params.count("service_time_us") > 0) {
          OBISWAP_ASSIGN_OR_RETURN(
              int64_t service, RequiredIntParam(params, "service_time_us"));
          if (service <= 0)
            return InvalidArgumentError("service_time_us must be positive");
          queue.service_time_us = static_cast<uint64_t>(service);
        }
        for (DeviceId device : discovery.AnnouncedDevices()) {
          net::StoreNode* node = discovery.NodeFor(device);
          if (node == nullptr) continue;
          // Shedding is a separate knob; the queue reconfigure keeps it.
          net::StoreNode::QueueOptions applied = queue;
          applied.priority_shedding = node->queue_options().priority_shedding;
          node->ConfigureQueue(applied);
        }
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-priority-shedding",
      [&discovery, &client](const context::Event&,
                            const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        for (DeviceId device : discovery.AnnouncedDevices()) {
          net::StoreNode* node = discovery.NodeFor(device);
          if (node == nullptr) continue;
          net::StoreNode::QueueOptions queue = node->queue_options();
          queue.priority_shedding = enabled != 0;
          node->ConfigureQueue(queue);
        }
        // Stores can only classify stamped requests, so the shedding knob
        // drives the client-side annotation too.
        client.set_annotate_priority(enabled != 0);
        return OkStatus();
      }));
  OBISWAP_RETURN_IF_ERROR(engine.RegisterAction(
      "set-retry-budget",
      [&client](const context::Event&, const ActionParams& params) -> Status {
        OBISWAP_ASSIGN_OR_RETURN(int64_t enabled,
                                 RequiredIntParam(params, "enabled"));
        net::StoreClient::RetryBudgetOptions budget = client.retry_budget();
        budget.enabled = enabled != 0;
        if (params.count("earn") > 0) {
          OBISWAP_ASSIGN_OR_RETURN(int64_t earn,
                                   RequiredIntParam(params, "earn"));
          if (earn < 0) return InvalidArgumentError("earn must be >= 0");
          budget.earn_per_success = static_cast<uint32_t>(earn);
        }
        if (params.count("cost") > 0) {
          OBISWAP_ASSIGN_OR_RETURN(int64_t cost,
                                   RequiredIntParam(params, "cost"));
          if (cost <= 0) return InvalidArgumentError("cost must be positive");
          budget.cost_per_retry = static_cast<uint32_t>(cost);
        }
        client.set_retry_budget(budget);
        return OkStatus();
      }));
  return OkStatus();
}

Status RegisterReplicationActions(PolicyEngine& engine,
                                  replication::ReplicationServer& server) {
  return engine.RegisterAction(
      "set-replication-cluster-size",
      [&server](const context::Event&, const ActionParams& params) {
        OBISWAP_ASSIGN_OR_RETURN(int64_t size,
                                 RequiredIntParam(params, "size"));
        if (size <= 0) return InvalidArgumentError("size must be positive");
        server.set_cluster_size(static_cast<size_t>(size));
        return OkStatus();
      });
}

}  // namespace obiswap::policy
