// Condition expressions for declarative policies.
//
// Policies are "coded in XML" (§4); their `when` conditions are small
// numeric expressions over context properties, e.g.
//
//   mem.used_ratio ge 0.85 and net.nearby_stores gt 0
//
// Word operators (lt le gt ge eq ne and or not) are aliases for the symbol
// forms so conditions embed cleanly in XML attributes; both are accepted.
// Identifiers resolve through the PropertyRegistry at evaluation time;
// truthiness is "!= 0".
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "context/context.h"

namespace obiswap::policy {

/// Parsed expression tree.
class Expr {
 public:
  virtual ~Expr() = default;
  /// Evaluates against the current properties. Unknown identifiers fail
  /// with kNotFound (a policy over an unpublished property never fires).
  virtual Result<double> Eval(const context::PropertyRegistry& props)
      const = 0;
  /// Round-trippable textual form (canonical, symbol operators).
  virtual std::string ToString() const = 0;
};

/// Parses an expression. Grammar (highest to lowest precedence):
///   primary   := number | identifier | '(' expr ')' | ('not'|'!') primary
///                | '-' primary
///   term      := primary (('*'|'/') primary)*
///   additive  := term (('+'|'-') term)*
///   compare   := additive (op additive)?      op in < <= > >= == != and
///                word aliases lt le gt ge eq ne
///   conjunct  := compare ('and' compare)*
///   expr      := conjunct ('or' conjunct)*
Result<std::unique_ptr<Expr>> ParseExpr(const std::string& text);

/// Convenience: parse + evaluate truthiness.
Result<bool> EvalCondition(const std::string& text,
                           const context::PropertyRegistry& props);

}  // namespace obiswap::policy
