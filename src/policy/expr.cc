#include "policy/expr.h"

#include <cctype>
#include <cmath>
#include <vector>

#include "common/string_util.h"

namespace obiswap::policy {

namespace {

// ---------------------------------------------------------------- lexer --

enum class TokKind {
  kNumber,
  kIdent,
  kOp,    // one of: + - * / ( ) < <= > >= == != ! and or not
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  double number = 0.0;
};

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push_op = [&tokens](std::string op) {
    tokens.push_back(Token{TokKind::kOp, std::move(op)});
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
              ((input[i] == '+' || input[i] == '-') && i > start &&
               (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      OBISWAP_ASSIGN_OR_RETURN(double value,
                               ParseDouble(input.substr(start, i - start)));
      tokens.push_back(Token{TokKind::kNumber, input.substr(start, i - start),
                             value});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '.')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      // Word operator aliases (XML-attribute friendly).
      if (word == "lt") {
        push_op("<");
      } else if (word == "le") {
        push_op("<=");
      } else if (word == "gt") {
        push_op(">");
      } else if (word == "ge") {
        push_op(">=");
      } else if (word == "eq") {
        push_op("==");
      } else if (word == "ne") {
        push_op("!=");
      } else if (word == "and" || word == "or" || word == "not") {
        push_op(word);
      } else {
        tokens.push_back(Token{TokKind::kIdent, std::move(word)});
      }
      continue;
    }
    // Symbol operators.
    if (c == '<' || c == '>' || c == '=' || c == '!') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        push_op(std::string(1, c) + "=");
        i += 2;
      } else if (c == '=') {
        return InvalidArgumentError("single '=' in expression (use ==)");
      } else {
        push_op(std::string(1, c));
        ++i;
      }
      continue;
    }
    if (c == '+' || c == '-' || c == '*' || c == '/' || c == '(' ||
        c == ')') {
      push_op(std::string(1, c));
      ++i;
      continue;
    }
    return InvalidArgumentError(std::string("bad character '") + c +
                                "' in expression");
  }
  tokens.push_back(Token{TokKind::kEnd, ""});
  return tokens;
}

// ------------------------------------------------------------------ AST --

class NumberExpr final : public Expr {
 public:
  explicit NumberExpr(double value) : value_(value) {}
  Result<double> Eval(const context::PropertyRegistry&) const override {
    return value_;
  }
  std::string ToString() const override { return StrFormat("%g", value_); }

 private:
  double value_;
};

class IdentExpr final : public Expr {
 public:
  explicit IdentExpr(std::string name) : name_(std::move(name)) {}
  Result<double> Eval(
      const context::PropertyRegistry& props) const override {
    return props.GetNumeric(name_);
  }
  std::string ToString() const override { return name_; }

 private:
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(char op, std::unique_ptr<Expr> operand)
      : op_(op), operand_(std::move(operand)) {}
  Result<double> Eval(
      const context::PropertyRegistry& props) const override {
    OBISWAP_ASSIGN_OR_RETURN(double v, operand_->Eval(props));
    return op_ == '!' ? (v == 0.0 ? 1.0 : 0.0) : -v;
  }
  std::string ToString() const override {
    return std::string(1, op_ == '!' ? '!' : '-') + "(" +
           operand_->ToString() + ")";
  }

 private:
  char op_;
  std::unique_ptr<Expr> operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(std::string op, std::unique_ptr<Expr> lhs,
             std::unique_ptr<Expr> rhs)
      : op_(std::move(op)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<double> Eval(
      const context::PropertyRegistry& props) const override {
    OBISWAP_ASSIGN_OR_RETURN(double a, lhs_->Eval(props));
    // Short-circuit the logical forms.
    if (op_ == "and") {
      if (a == 0.0) return 0.0;
      OBISWAP_ASSIGN_OR_RETURN(double b, rhs_->Eval(props));
      return b != 0.0 ? 1.0 : 0.0;
    }
    if (op_ == "or") {
      if (a != 0.0) return 1.0;
      OBISWAP_ASSIGN_OR_RETURN(double b, rhs_->Eval(props));
      return b != 0.0 ? 1.0 : 0.0;
    }
    OBISWAP_ASSIGN_OR_RETURN(double b, rhs_->Eval(props));
    if (op_ == "+") return a + b;
    if (op_ == "-") return a - b;
    if (op_ == "*") return a * b;
    if (op_ == "/") {
      if (b == 0.0) return InvalidArgumentError("division by zero");
      return a / b;
    }
    if (op_ == "<") return a < b ? 1.0 : 0.0;
    if (op_ == "<=") return a <= b ? 1.0 : 0.0;
    if (op_ == ">") return a > b ? 1.0 : 0.0;
    if (op_ == ">=") return a >= b ? 1.0 : 0.0;
    if (op_ == "==") return a == b ? 1.0 : 0.0;
    if (op_ == "!=") return a != b ? 1.0 : 0.0;
    return InternalError("unknown operator " + op_);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + op_ + " " + rhs_->ToString() + ")";
  }

 private:
  std::string op_;
  std::unique_ptr<Expr> lhs_;
  std::unique_ptr<Expr> rhs_;
};

// --------------------------------------------------------------- parser --

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Expr>> Parse() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOr());
    if (!AtEnd())
      return InvalidArgumentError("trailing tokens after expression: '" +
                                  Peek().text + "'");
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  bool ConsumeOp(const std::string& op) {
    if (Peek().kind == TokKind::kOp && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (ConsumeOp("or")) {
      OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = std::make_unique<BinaryExpr>("or", std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseCompare());
    while (ConsumeOp("and")) {
      OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseCompare());
      lhs = std::make_unique<BinaryExpr>("and", std::move(lhs),
                                         std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseCompare() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    for (const char* op : {"<=", ">=", "==", "!=", "<", ">"}) {
      if (ConsumeOp(op)) {
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
        return std::unique_ptr<Expr>(
            std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs)));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseTerm());
    for (;;) {
      if (ConsumeOp("+")) {
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseTerm());
        lhs = std::make_unique<BinaryExpr>("+", std::move(lhs),
                                           std::move(rhs));
      } else if (ConsumeOp("-")) {
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseTerm());
        lhs = std::make_unique<BinaryExpr>("-", std::move(lhs),
                                           std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseTerm() {
    OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePrimary());
    for (;;) {
      if (ConsumeOp("*")) {
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
        lhs = std::make_unique<BinaryExpr>("*", std::move(lhs),
                                           std::move(rhs));
      } else if (ConsumeOp("/")) {
        OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePrimary());
        lhs = std::make_unique<BinaryExpr>("/", std::move(lhs),
                                           std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    if (ConsumeOp("(")) {
      OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseOr());
      if (!ConsumeOp(")")) return InvalidArgumentError("missing ')'");
      return inner;
    }
    if (ConsumeOp("not") || ConsumeOp("!")) {
      OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParsePrimary());
      return std::unique_ptr<Expr>(
          std::make_unique<UnaryExpr>('!', std::move(operand)));
    }
    if (ConsumeOp("-")) {
      OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParsePrimary());
      return std::unique_ptr<Expr>(
          std::make_unique<UnaryExpr>('-', std::move(operand)));
    }
    if (Peek().kind == TokKind::kNumber) {
      double value = Peek().number;
      ++pos_;
      return std::unique_ptr<Expr>(std::make_unique<NumberExpr>(value));
    }
    if (Peek().kind == TokKind::kIdent) {
      std::string name = Peek().text;
      ++pos_;
      return std::unique_ptr<Expr>(
          std::make_unique<IdentExpr>(std::move(name)));
    }
    return InvalidArgumentError("unexpected token '" + Peek().text +
                                "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Expr>> ParseExpr(const std::string& text) {
  OBISWAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<bool> EvalCondition(const std::string& text,
                           const context::PropertyRegistry& props) {
  OBISWAP_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseExpr(text));
  OBISWAP_ASSIGN_OR_RETURN(double value, expr->Eval(props));
  return value != 0.0;
}

}  // namespace obiswap::policy
