// Standard middleware actions for the policy engine.
//
// These bind the engine to the other OBIWAN modules: swapping (swap-out a
// victim / a named cluster, swap-in), memory management (collect), and
// replication (adapt the cluster size). Applications register their own
// actions alongside these.
#pragma once

#include "fleet/placement.h"
#include "policy/engine.h"
#include "prefetch/prefetcher.h"
#include "replication/server.h"
#include "runtime/runtime.h"
#include "swap/manager.h"
#include "tier/tier.h"

namespace obiswap::policy {

/// Registers:
///   swap-out-victim              — SwappingManager::SwapOutVictim
///   swap-out   (param "cluster") — SwappingManager::SwapOut
///   swap-in    (param "cluster") — SwappingManager::SwapIn
///   collect                      — full local collection
///   set-telemetry (param "enabled", 0/1) — toggles span/journal recording
///   dump-trace    (param "path")  — writes the Chrome trace JSON to path
///   set-brownout  (param "enabled", 0/1) — forces brownout on/off (note: a
///                                          DurabilityMonitor with a health
///                                          tracker attached overrides this
///                                          on its next poll)
///   set-hedged-fetch (param "enabled", 0/1) — toggles hedged demand fetch
///   set-op-deadline  (param "us") — per-operation virtual-time budget
///                                   (0 = unlimited)
/// All objects must outlive the engine.
Status RegisterSwapActions(PolicyEngine& engine, runtime::Runtime& rt,
                           swap::SwappingManager& manager);

/// Registers:
///   set-replication-cluster-size (param "size") — adapts the grain
/// (paper §2: clusters have "adaptable size").
Status RegisterReplicationActions(PolicyEngine& engine,
                                  replication::ReplicationServer& server);

/// Registers:
///   set-prefetch-budget (param "budget") — max outstanding speculative
///                                          clusters
///   set-prefetch-mode   (param "mode")   — "off" | "cache" | "full"
/// The prefetcher must outlive the engine.
Status RegisterPrefetchActions(PolicyEngine& engine,
                               prefetch::Prefetcher& prefetcher);

/// Registers:
///   set-tier-bytes (params "tier" = "ram" | "flash", "bytes") — resizes a
///       tier budget at runtime. For "flash" the byte count is converted to
///       whole slots (rounded down to flash_slot_bytes granularity).
///   set-tier-mode  (param "mode" = "off" | "ram" | "flash" | "all") —
///       gates tier *admission*; existing entries keep serving probes and
///       drain through write-back.
/// The tier manager must outlive the engine.
Status RegisterTierActions(PolicyEngine& engine, tier::TierManager& tiers);

/// Registers:
///   set-placement-mode (param "mode" = "directory" | "walk") — switches
///       replica placement between the rendezvous directory and the legacy
///       nearby-store walk. "directory" fails (kFailedPrecondition) while no
///       directory is attached to the manager.
///   set-fleet (params "op" = "join" | "leave" | "weight" | "healthy",
///              "store" = <device id>, plus "weight" for op=weight/join and
///              "healthy" 0/1 for op=healthy) — edits the fleet view
///       directly. Note a DurabilityMonitor with AttachFleet active re-syncs
///       membership with discovery each poll, so join/leave of stores that
///       are (or are not) announced will be reverted there; weight overrides
///       persist.
/// Directory and manager must outlive the engine.
Status RegisterFleetActions(PolicyEngine& engine,
                            swap::SwappingManager& manager,
                            fleet::PlacementDirectory& directory);

/// Registers the overload-resilience knobs (all default-off):
///   set-store-queue (params "enabled" 0/1, optional "concurrency",
///       "queue_limit", "service_time_us") — configures the bounded
///       admission queue on every announced store node (each node keeps
///       its current priority_shedding flag).
///   set-priority-shedding (param "enabled" 0/1) — turns lowest-class-first
///       shedding on at every announced store AND priority annotation on at
///       the client (stores can only classify stamped requests).
///   set-retry-budget (param "enabled" 0/1, optional "earn", "cost" in
///       centitokens) — the client's per-store retry token bucket.
/// Discovery and client must outlive the engine.
Status RegisterOverloadActions(PolicyEngine& engine, net::Discovery& discovery,
                               net::StoreClient& client);

}  // namespace obiswap::policy
