// Replication server: the master copy of the application's object graph.
//
// OBIWAN replicates objects "incrementally ... in groups (clusters) of
// adaptable size" (§1). The server owns the master Runtime, exposes named
// roots, and serves clusters: a fault request for object X returns a
// breadth-first cluster of up to cluster_size not-yet-sent objects starting
// at X, serialized as a cluster XML document. Per-device sessions track
// which objects each device already holds, so external references are
// encoded by identity and become replication proxies (or bind to existing
// replicas) on the device.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/runtime.h"

namespace obiswap::replication {

/// Response to a root lookup: enough to create a typed proxy on the device.
struct RootInfo {
  ObjectId oid;
  std::string class_name;
};

/// Response to a cluster fault.
struct ClusterReply {
  ClusterId cluster;
  std::string xml;       ///< cluster document (serialization/graph_xml.h)
  size_t object_count = 0;
  /// (oid, master version) for each shipped object — present when a
  /// version provider (transactional support) is attached to the server.
  std::vector<std::pair<ObjectId, uint64_t>> versions;
};

class ReplicationServer {
 public:
  struct Stats {
    uint64_t root_requests = 0;
    uint64_t cluster_requests = 0;
    uint64_t objects_shipped = 0;
    uint64_t bytes_shipped = 0;
  };

  /// `rt` is the master runtime holding the application graph; it must
  /// outlive the server. `cluster_size` is the adaptable replication grain.
  explicit ReplicationServer(runtime::Runtime& rt, size_t cluster_size = 32)
      : rt_(rt), cluster_size_(cluster_size) {}

  runtime::Runtime& rt() { return rt_; }

  size_t cluster_size() const { return cluster_size_; }
  /// Adapts the replication grain (paper: "adaptable size").
  void set_cluster_size(size_t size) { cluster_size_ = size ? size : 1; }

  /// Publishes a master object under a name devices can ask for.
  Status PublishRoot(const std::string& name, runtime::Object* root);

  /// Looks up a published root.
  Result<RootInfo> GetRoot(const std::string& name);

  /// Serves the cluster containing `oid` for `device`: BFS over objects the
  /// device does not yet hold, capped at cluster_size. kNotFound if the oid
  /// is unknown; kFailedPrecondition if the device already holds it.
  Result<ClusterReply> FetchCluster(DeviceId device, ObjectId oid);

  /// A value snapshot of one master object (replica refresh): every
  /// non-reference field plus the current version. Structural changes are
  /// out of scope — they replicate through the object graph.
  struct ValueSnapshot {
    ObjectId oid;
    uint64_t version = 0;
    std::vector<std::pair<std::string, runtime::Value>> fields;
  };
  Result<ValueSnapshot> SnapshotValues(DeviceId device, ObjectId oid);

  /// Objects already shipped to `device` (session state).
  size_t SentCount(DeviceId device) const;
  bool HasShipped(DeviceId device, ObjectId oid) const;

  /// Drops a device's session (device re-replicates from scratch).
  void ForgetDevice(DeviceId device);

  /// DGC: the device reported these replicas unreachable. Removes them from
  /// the session (the device may re-replicate later) and notifies the ship
  /// observer with an empty ship so scion bookkeeping can react.
  void ReleaseObjects(DeviceId device, const std::vector<ObjectId>& oids);

  /// Observes every ship (DGC scion creation) and release. `shipped` is the
  /// master objects just sent; `released` the oids just released.
  struct ShipObserver {
    virtual ~ShipObserver() = default;
    virtual void OnShipped(DeviceId device,
                           const std::vector<runtime::Object*>& shipped) = 0;
    virtual void OnReleased(DeviceId device,
                            const std::vector<ObjectId>& released) = 0;
  };
  void SetShipObserver(ShipObserver* observer) { observer_ = observer; }
  ShipObserver* ship_observer() const { return observer_; }

  /// Transactional support: supplies the master version for each shipped
  /// object so device transactions can validate at commit time.
  using VersionProvider = std::function<uint64_t(ObjectId)>;
  void SetVersionProvider(VersionProvider provider) {
    version_provider_ = std::move(provider);
  }

  const Stats& stats() const { return stats_; }

 private:
  runtime::Object* FindByOid(ObjectId oid);

  runtime::Runtime& rt_;
  size_t cluster_size_;
  uint32_t next_cluster_id_ = 1;
  std::unordered_map<std::string, runtime::Object*> roots_;
  std::unordered_map<DeviceId, std::unordered_set<ObjectId>> sessions_;
  ShipObserver* observer_ = nullptr;
  VersionProvider version_provider_;
  Stats stats_;
};

}  // namespace obiswap::replication
