#include "replication/server.h"

#include <deque>

#include "serialization/graph_xml.h"

namespace obiswap::replication {

using runtime::Object;
using runtime::Value;

Status ReplicationServer::PublishRoot(const std::string& name, Object* root) {
  if (root == nullptr) return InvalidArgumentError("null root");
  if (roots_.count(name) > 0)
    return AlreadyExistsError("root '" + name + "' already published");
  roots_[name] = root;
  // Anchor the root in the master runtime's globals so the master LGC never
  // collects published graphs.
  return rt_.SetGlobal("__obiwan_root_" + name, Value::Ref(root));
}

Result<RootInfo> ReplicationServer::GetRoot(const std::string& name) {
  ++stats_.root_requests;
  auto it = roots_.find(name);
  if (it == roots_.end())
    return NotFoundError("no published root '" + name + "'");
  return RootInfo{it->second->oid(), it->second->cls().name()};
}

Object* ReplicationServer::FindByOid(ObjectId oid) {
  Object* found = nullptr;
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->oid() == oid) found = obj;
  });
  return found;
}

Result<ClusterReply> ReplicationServer::FetchCluster(DeviceId device,
                                                     ObjectId oid) {
  ++stats_.cluster_requests;
  Object* start = FindByOid(oid);
  if (start == nullptr)
    return NotFoundError("no master object with oid " + oid.ToString());
  std::unordered_set<ObjectId>& sent = sessions_[device];
  if (sent.count(oid) > 0)
    return FailedPreconditionError("device already holds oid " +
                                   oid.ToString());

  // BFS from the faulted object over not-yet-sent objects.
  std::vector<Object*> members;
  std::unordered_set<const Object*> visited;
  std::deque<Object*> frontier;
  frontier.push_back(start);
  visited.insert(start);
  while (!frontier.empty() && members.size() < cluster_size_) {
    Object* obj = frontier.front();
    frontier.pop_front();
    if (sent.count(obj->oid()) > 0) continue;  // device already holds it
    members.push_back(obj);
    for (size_t i = 0; i < obj->slot_count(); ++i) {
      const Value& slot = obj->RawSlot(i);
      if (!slot.is_ref() || slot.ref() == nullptr) continue;
      Object* target = slot.ref();
      if (visited.insert(target).second) frontier.push_back(target);
    }
  }

  ClusterId cluster(next_cluster_id_++);
  for (Object* member : members) sent.insert(member->oid());

  // External refs: objects outside this cluster, described by identity. On
  // the device they bind to existing replicas or become replication
  // proxies.
  auto describe = [](Object* target) {
    serialization::ExternalRef ref;
    ref.oid = target->oid();
    ref.class_name = target->cls().name();
    ref.cluster = target->cluster();
    return Result<serialization::ExternalRef>(ref);
  };
  // Label members with the cluster id so the document carries it.
  for (Object* member : members) member->set_cluster(cluster);
  OBISWAP_ASSIGN_OR_RETURN(
      serialization::SerializedCluster serialized,
      serialization::SerializeCluster(rt_, cluster.value(), members,
                                      describe));

  stats_.objects_shipped += members.size();
  stats_.bytes_shipped += serialized.payload.size();
  // Observer first (transactional support seeds versions on first ship),
  // then collect the versions that travel with the reply.
  if (observer_ != nullptr) observer_->OnShipped(device, members);
  ClusterReply reply{cluster, std::move(serialized.payload), members.size(), {}};
  if (version_provider_) {
    reply.versions.reserve(members.size());
    for (Object* member : members) {
      reply.versions.emplace_back(member->oid(),
                                  version_provider_(member->oid()));
    }
  }
  return reply;
}

bool ReplicationServer::HasShipped(DeviceId device, ObjectId oid) const {
  auto it = sessions_.find(device);
  return it != sessions_.end() && it->second.count(oid) > 0;
}

void ReplicationServer::ReleaseObjects(DeviceId device,
                                       const std::vector<ObjectId>& oids) {
  auto it = sessions_.find(device);
  if (it != sessions_.end()) {
    for (ObjectId oid : oids) it->second.erase(oid);
  }
  if (observer_ != nullptr) observer_->OnReleased(device, oids);
}

Result<ReplicationServer::ValueSnapshot> ReplicationServer::SnapshotValues(
    DeviceId device, ObjectId oid) {
  if (!HasShipped(device, oid))
    return FailedPreconditionError("device does not hold oid " +
                                   oid.ToString());
  Object* master = FindByOid(oid);
  if (master == nullptr)
    return NotFoundError("no master object with oid " + oid.ToString());
  ValueSnapshot snapshot;
  snapshot.oid = oid;
  snapshot.version = version_provider_ ? version_provider_(oid) : 0;
  const auto& fields = master->cls().fields();
  for (size_t i = 0; i < fields.size(); ++i) {
    const runtime::Value& slot = master->RawSlot(i);
    // Structural state is never refreshed; nil is skipped too — a nil slot
    // on the master may be a cleared reference, which must not clobber the
    // replica's (possibly mediated) link.
    if (fields[i].kind == runtime::ValueKind::kRef || slot.is_ref() ||
        slot.is_nil()) {
      continue;
    }
    snapshot.fields.emplace_back(fields[i].name, slot);
  }
  return snapshot;
}

size_t ReplicationServer::SentCount(DeviceId device) const {
  auto it = sessions_.find(device);
  return it == sessions_.end() ? 0 : it->second.size();
}

void ReplicationServer::ForgetDevice(DeviceId device) {
  sessions_.erase(device);
}

}  // namespace obiswap::replication
