// Replication over the web-service bridge (Communication Services).
//
// Same envelope discipline as the store bridge: requests and responses are
// XML documents shipped over the simulated network, so replication pays
// realistic transfer costs on the 700 Kbps link.
#pragma once

#include <string>

#include "net/network.h"
#include "replication/device.h"
#include "replication/server.h"

namespace obiswap::replication {

/// Server-side dispatcher: one per hosted ReplicationServer.
class ReplicationService {
 public:
  explicit ReplicationService(ReplicationServer& server) : server_(server) {}

  /// Handles one XML request; errors become response envelopes.
  std::string Handle(const std::string& request_xml);

 private:
  ReplicationServer& server_;
};

/// Device-side ServerLink that tunnels through the network.
class NetworkLink : public ServerLink {
 public:
  struct Stats {
    uint64_t calls = 0;
    uint64_t retries = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
  };

  NetworkLink(net::Network& network, DeviceId self, DeviceId server_device,
              ReplicationService& service, int max_attempts = 3)
      : network_(network),
        self_(self),
        server_device_(server_device),
        service_(service),
        max_attempts_(max_attempts) {}

  Result<RootInfo> GetRoot(const std::string& name) override;
  Result<ClusterReply> FetchCluster(DeviceId device, ObjectId oid) override;
  Result<ReplicationServer::ValueSnapshot> SnapshotValues(
      DeviceId device, ObjectId oid) override;

  const Stats& stats() const { return stats_; }

 private:
  Result<std::string> Call(const std::string& request_xml);

  net::Network& network_;
  DeviceId self_;
  DeviceId server_device_;
  ReplicationService& service_;
  int max_attempts_;
  Stats stats_;
};

}  // namespace obiswap::replication
