// Device endpoint: incremental replication with object-fault handling.
//
// The device holds replicas plus replication proxies for objects not yet
// replicated. "When these proxies are invoked, object replication is
// triggered and, after replicating another cluster of objects, the proxies
// are removed from the object graph (i.e., replaced by the actual object
// replicas)" (§1) — so once replicated, invocation runs at full speed with
// no indirection. When the swapping layer is installed, replacement stores
// go through the runtime's store mediation, which is exactly where
// cross-swap-cluster references acquire their permanent swap-cluster-proxies
// ("proxy replacement is performed differently", §3).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "common/status.h"
#include "context/events.h"
#include "replication/server.h"
#include "runtime/runtime.h"

namespace obiswap::replication {

/// How the device reaches the server. DirectLink is in-process; NetworkLink
/// (transport.h) adds the web-service bridge and link costs.
class ServerLink {
 public:
  virtual ~ServerLink() = default;
  virtual Result<RootInfo> GetRoot(const std::string& name) = 0;
  virtual Result<ClusterReply> FetchCluster(DeviceId device, ObjectId oid) = 0;
  virtual Result<ReplicationServer::ValueSnapshot> SnapshotValues(
      DeviceId device, ObjectId oid) = 0;
};

/// In-process link (tests, single-process examples).
class DirectLink : public ServerLink {
 public:
  explicit DirectLink(ReplicationServer& server) : server_(server) {}
  Result<RootInfo> GetRoot(const std::string& name) override {
    return server_.GetRoot(name);
  }
  Result<ClusterReply> FetchCluster(DeviceId device, ObjectId oid) override {
    return server_.FetchCluster(device, oid);
  }
  Result<ReplicationServer::ValueSnapshot> SnapshotValues(
      DeviceId device, ObjectId oid) override {
    return server_.SnapshotValues(device, oid);
  }

 private:
  ReplicationServer& server_;
};

class DeviceEndpoint : public runtime::Interceptor {
 public:
  struct Stats {
    uint64_t object_faults = 0;
    uint64_t clusters_replicated = 0;
    uint64_t objects_replicated = 0;
    uint64_t references_patched = 0;
    uint64_t proxies_created = 0;
  };

  /// Installs itself as the runtime's kReplicationProxy interceptor and
  /// registers the proxy class. `bus` (optional) receives
  /// cluster-replicated events — the SwappingManager listens there.
  DeviceEndpoint(runtime::Runtime& rt, ServerLink& link, DeviceId self,
                 context::EventBus* bus = nullptr);

  /// Fetches (a proxy for) a published root. The returned object is a
  /// replication proxy until first invocation, matching lazy replication.
  Result<runtime::Object*> FetchRoot(const std::string& name);

  /// Forces replication of the cluster containing `oid` (prefetch).
  Result<runtime::Object*> Materialize(ObjectId oid);

  /// Replica refresh: re-fetches the master's *value* fields for `oid` and
  /// applies them to the local replica, advancing its known version
  /// (transaction conflict recovery: refresh, then retry). Structural
  /// (reference) state is never refreshed — it replicates through faults.
  /// The replica must be resident; kFailedPrecondition if it is swapped
  /// out or was never replicated.
  Result<uint64_t> RefreshValues(ObjectId oid);

  /// The local replica for `oid`, or nullptr (never faults).
  runtime::Object* FindReplica(ObjectId oid);

  /// Visits the oid of every replica still live in the local heap (prunes
  /// dead entries). The DGC client diffs this against what the server
  /// thinks the device holds.
  void ForEachLiveReplicaOid(const std::function<void(ObjectId)>& visit);

  /// Every oid this device has ever received and not yet released — the
  /// DGC client's universe of candidates.
  const std::unordered_set<ObjectId>& received_oids() const {
    return received_;
  }
  /// DGC reported these to the server as released; forget them locally so
  /// a later re-replication is tracked afresh.
  void MarkReleased(const std::vector<ObjectId>& oids);

  /// Transactional support taps the versions that travel with replicated
  /// clusters.
  using VersionSink = std::function<void(ObjectId, uint64_t)>;
  void SetVersionSink(VersionSink sink) { version_sink_ = std::move(sink); }

  /// Interceptor: invocation on a replication proxy = object fault.
  Result<runtime::Value> Invoke(runtime::Runtime& rt,
                                runtime::Object* receiver,
                                std::string_view method,
                                std::vector<runtime::Value>& args) override;

  const Stats& stats() const { return stats_; }
  DeviceId self() const { return self_; }

 private:
  /// Finds or creates the replication proxy standing in for `oid`.
  Result<runtime::Object*> ProxyFor(ObjectId oid,
                                    const std::string& class_name);
  /// Replicates the cluster containing `oid`; returns the replica.
  Result<runtime::Object*> Fault(ObjectId oid);
  /// Proxy replacement: all references to `proxy` are re-pointed at `real`
  /// (through store mediation for application objects).
  void ReplaceProxy(runtime::Object* proxy, runtime::Object* real);

  runtime::Runtime& rt_;
  ServerLink& link_;
  DeviceId self_;
  context::EventBus* bus_;
  const runtime::ClassInfo* proxy_cls_;
  std::unordered_map<ObjectId, runtime::WeakRef> replicas_;
  std::unordered_map<ObjectId, runtime::WeakRef> proxies_;
  std::unordered_set<ObjectId> received_;
  VersionSink version_sink_;
  Stats stats_;
};

}  // namespace obiswap::replication
