#include "replication/transport.h"

#include "common/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::replication {

namespace {

std::string ErrorResponse(StatusCode code, const std::string& message) {
  auto response = xml::Node::Element("response");
  response->SetAttr("status", StatusCodeName(code));
  response->SetAttr("message", message);
  return xml::Write(*response);
}

StatusCode CodeFromName(const std::string& name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kDataLoss, StatusCode::kInternal}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

Result<std::unique_ptr<xml::Node>> ParseOkResponse(
    const std::string& response_xml) {
  OBISWAP_ASSIGN_OR_RETURN(auto doc, xml::Parse(response_xml));
  const std::string* status_name = doc->FindAttr("status");
  if (status_name == nullptr) return DataLossError("response missing status");
  if (*status_name != "OK") {
    const std::string* message = doc->FindAttr("message");
    return Status(CodeFromName(*status_name),
                  message != nullptr ? *message : "remote error");
  }
  return doc;
}

}  // namespace

std::string ReplicationService::Handle(const std::string& request_xml) {
  auto parsed = xml::Parse(request_xml);
  if (!parsed.ok())
    return ErrorResponse(StatusCode::kInvalidArgument,
                         parsed.status().message());
  const xml::Node& request = **parsed;
  const std::string* op = request.FindAttr("op");
  if (request.name() != "request" || op == nullptr)
    return ErrorResponse(StatusCode::kInvalidArgument, "bad request");

  if (*op == "root") {
    const std::string* name = request.FindAttr("name");
    if (name == nullptr)
      return ErrorResponse(StatusCode::kInvalidArgument, "missing name");
    Result<RootInfo> info = server_.GetRoot(*name);
    if (!info.ok())
      return ErrorResponse(info.status().code(), info.status().message());
    auto response = xml::Node::Element("response");
    response->SetAttr("status", "OK");
    response->SetIntAttr("oid", static_cast<int64_t>(info->oid.value()));
    response->SetAttr("class", info->class_name);
    return xml::Write(*response);
  }
  if (*op == "cluster") {
    auto device_attr = request.GetIntAttr("device");
    auto oid_attr = request.GetIntAttr("oid");
    if (!device_attr.ok() || !oid_attr.ok())
      return ErrorResponse(StatusCode::kInvalidArgument,
                           "missing device/oid");
    Result<ClusterReply> reply = server_.FetchCluster(
        DeviceId(static_cast<uint32_t>(*device_attr)),
        ObjectId(static_cast<uint64_t>(*oid_attr)));
    if (!reply.ok())
      return ErrorResponse(reply.status().code(), reply.status().message());
    auto response = xml::Node::Element("response");
    response->SetAttr("status", "OK");
    response->SetIntAttr("cluster",
                         static_cast<int64_t>(reply->cluster.value()));
    response->SetIntAttr("count", static_cast<int64_t>(reply->object_count));
    for (const auto& [oid, version] : reply->versions) {
      xml::Node* version_el = response->AddElement("version");
      version_el->SetIntAttr("oid", static_cast<int64_t>(oid.value()));
      version_el->SetIntAttr("v", static_cast<int64_t>(version));
    }
    response->AddElement("payload")->AddText(reply->xml);
    return xml::Write(*response);
  }
  if (*op == "snapshot") {
    auto device_attr = request.GetIntAttr("device");
    auto oid_attr = request.GetIntAttr("oid");
    if (!device_attr.ok() || !oid_attr.ok())
      return ErrorResponse(StatusCode::kInvalidArgument,
                           "missing device/oid");
    Result<ReplicationServer::ValueSnapshot> snapshot =
        server_.SnapshotValues(DeviceId(static_cast<uint32_t>(*device_attr)),
                               ObjectId(static_cast<uint64_t>(*oid_attr)));
    if (!snapshot.ok())
      return ErrorResponse(snapshot.status().code(),
                           snapshot.status().message());
    auto response = xml::Node::Element("response");
    response->SetAttr("status", "OK");
    response->SetIntAttr("oid", static_cast<int64_t>(snapshot->oid.value()));
    response->SetIntAttr("v", static_cast<int64_t>(snapshot->version));
    for (const auto& [field, value] : snapshot->fields) {
      xml::Node* field_el = response->AddElement("f");
      field_el->SetAttr("n", field);
      field_el->SetAttr("t", runtime::ValueKindName(value.kind()));
      switch (value.kind()) {
        case runtime::ValueKind::kNil:
        case runtime::ValueKind::kRef:
          break;
        case runtime::ValueKind::kInt:
          field_el->AddText(std::to_string(value.as_int()));
          break;
        case runtime::ValueKind::kReal:
          field_el->AddText(StrFormat("%.17g", value.as_real()));
          break;
        case runtime::ValueKind::kStr:
          field_el->AddText(value.as_str());
          break;
      }
    }
    return xml::Write(*response);
  }
  return ErrorResponse(StatusCode::kInvalidArgument, "unknown op");
}

Result<std::string> NetworkLink::Call(const std::string& request_xml) {
  ++stats_.calls;
  Status last = UnavailableError("no attempt made");
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    Result<uint64_t> out =
        network_.Transfer(self_, server_device_, request_xml.size());
    if (!out.ok()) {
      last = out.status();
      if (last.code() != StatusCode::kUnavailable) return last;
      continue;
    }
    stats_.bytes_sent += request_xml.size();
    std::string response = service_.Handle(request_xml);
    Result<uint64_t> back =
        network_.Transfer(server_device_, self_, response.size());
    if (!back.ok()) {
      last = back.status();
      if (last.code() != StatusCode::kUnavailable) return last;
      continue;
    }
    stats_.bytes_received += response.size();
    return response;
  }
  return last;
}

Result<RootInfo> NetworkLink::GetRoot(const std::string& name) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "root");
  request->SetAttr("name", name);
  OBISWAP_ASSIGN_OR_RETURN(std::string response, Call(xml::Write(*request)));
  OBISWAP_ASSIGN_OR_RETURN(auto doc, ParseOkResponse(response));
  OBISWAP_ASSIGN_OR_RETURN(int64_t oid, doc->GetIntAttr("oid"));
  OBISWAP_ASSIGN_OR_RETURN(std::string class_name, doc->GetAttr("class"));
  return RootInfo{ObjectId(static_cast<uint64_t>(oid)), class_name};
}

Result<ReplicationServer::ValueSnapshot> NetworkLink::SnapshotValues(
    DeviceId device, ObjectId oid) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "snapshot");
  request->SetIntAttr("device", device.value());
  request->SetIntAttr("oid", static_cast<int64_t>(oid.value()));
  OBISWAP_ASSIGN_OR_RETURN(std::string response, Call(xml::Write(*request)));
  OBISWAP_ASSIGN_OR_RETURN(auto doc, ParseOkResponse(response));
  ReplicationServer::ValueSnapshot snapshot;
  OBISWAP_ASSIGN_OR_RETURN(int64_t oid_attr, doc->GetIntAttr("oid"));
  snapshot.oid = ObjectId(static_cast<uint64_t>(oid_attr));
  OBISWAP_ASSIGN_OR_RETURN(int64_t version, doc->GetIntAttr("v"));
  snapshot.version = static_cast<uint64_t>(version);
  for (const xml::Node* field_el : doc->FindChildren("f")) {
    OBISWAP_ASSIGN_OR_RETURN(std::string name, field_el->GetAttr("n"));
    OBISWAP_ASSIGN_OR_RETURN(std::string kind, field_el->GetAttr("t"));
    std::string text = field_el->InnerText();
    runtime::Value value;
    if (kind == "nil") {
      value = runtime::Value::Nil();
    } else if (kind == "int") {
      OBISWAP_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(text));
      value = runtime::Value::Int(parsed);
    } else if (kind == "real") {
      OBISWAP_ASSIGN_OR_RETURN(double parsed, ParseDouble(text));
      value = runtime::Value::Real(parsed);
    } else if (kind == "str") {
      value = runtime::Value::Str(std::move(text));
    } else {
      return DataLossError("bad snapshot field kind '" + kind + "'");
    }
    snapshot.fields.emplace_back(std::move(name), std::move(value));
  }
  return snapshot;
}

Result<ClusterReply> NetworkLink::FetchCluster(DeviceId device,
                                               ObjectId oid) {
  auto request = xml::Node::Element("request");
  request->SetAttr("op", "cluster");
  request->SetIntAttr("device", device.value());
  request->SetIntAttr("oid", static_cast<int64_t>(oid.value()));
  OBISWAP_ASSIGN_OR_RETURN(std::string response, Call(xml::Write(*request)));
  OBISWAP_ASSIGN_OR_RETURN(auto doc, ParseOkResponse(response));
  OBISWAP_ASSIGN_OR_RETURN(int64_t cluster, doc->GetIntAttr("cluster"));
  OBISWAP_ASSIGN_OR_RETURN(int64_t count, doc->GetIntAttr("count"));
  OBISWAP_ASSIGN_OR_RETURN(const xml::Node* payload, doc->GetChild("payload"));
  ClusterReply reply{ClusterId(static_cast<uint32_t>(cluster)),
                     payload->InnerText(), static_cast<size_t>(count), {}};
  for (const xml::Node* version_el : doc->FindChildren("version")) {
    OBISWAP_ASSIGN_OR_RETURN(int64_t oid, version_el->GetIntAttr("oid"));
    OBISWAP_ASSIGN_OR_RETURN(int64_t version, version_el->GetIntAttr("v"));
    reply.versions.emplace_back(ObjectId(static_cast<uint64_t>(oid)),
                                static_cast<uint64_t>(version));
  }
  return reply;
}

}  // namespace obiswap::replication
