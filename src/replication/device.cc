#include "replication/device.h"

#include "common/logging.h"
#include "serialization/graph_xml.h"

namespace obiswap::replication {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using runtime::ValueKind;

namespace {
constexpr const char* kProxyClassName = "obiwan.ReplicationProxy";
constexpr size_t kSlotOid = 0;
constexpr size_t kSlotClassName = 1;

Object* LookupWeak(std::unordered_map<ObjectId, runtime::WeakRef>& table,
                   ObjectId oid) {
  auto it = table.find(oid);
  if (it == table.end()) return nullptr;
  Object* target = it->second->get();
  if (target == nullptr) table.erase(it);
  return target;
}
}  // namespace

DeviceEndpoint::DeviceEndpoint(runtime::Runtime& rt, ServerLink& link,
                               DeviceId self, context::EventBus* bus)
    : rt_(rt), link_(link), self_(self), bus_(bus) {
  const ClassInfo* existing = rt_.types().Find(kProxyClassName);
  if (existing != nullptr) {
    proxy_cls_ = existing;
  } else {
    proxy_cls_ = *rt_.types().Register(
        ClassBuilder(kProxyClassName)
            .Kind(ObjectKind::kReplicationProxy)
            .Field("oid", ValueKind::kInt)
            .Field("class", ValueKind::kStr));
  }
  rt_.SetInterceptor(ObjectKind::kReplicationProxy, this);
}

Result<Object*> DeviceEndpoint::ProxyFor(ObjectId oid,
                                         const std::string& class_name) {
  if (Object* proxy = LookupWeak(proxies_, oid); proxy != nullptr)
    return proxy;
  OBISWAP_ASSIGN_OR_RETURN(Object * proxy, rt_.TryNewMiddleware(proxy_cls_));
  proxy->RawSlotMutable(kSlotOid) =
      Value::Int(static_cast<int64_t>(oid.value()));
  proxy->RawSlotMutable(kSlotClassName) = Value::Str(class_name);
  proxies_[oid] = rt_.heap().NewWeakRef(proxy);
  ++stats_.proxies_created;
  return proxy;
}

Result<Object*> DeviceEndpoint::FetchRoot(const std::string& name) {
  OBISWAP_ASSIGN_OR_RETURN(RootInfo info, link_.GetRoot(name));
  if (Object* replica = FindReplica(info.oid); replica != nullptr)
    return replica;
  return ProxyFor(info.oid, info.class_name);
}

Object* DeviceEndpoint::FindReplica(ObjectId oid) {
  if (Object* replica = LookupWeak(replicas_, oid); replica != nullptr)
    return replica;
  // The weak entry clears when the replica's swap-cluster is swapped out;
  // swapping back in re-creates the object with the same identity. Fall
  // back to a heap scan and re-register on hit.
  if (received_.count(oid) == 0) return nullptr;
  Object* found = nullptr;
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->kind() == runtime::ObjectKind::kRegular && obj->oid() == oid)
      found = obj;
  });
  if (found != nullptr) replicas_[oid] = rt_.heap().NewWeakRef(found);
  return found;
}

void DeviceEndpoint::MarkReleased(const std::vector<ObjectId>& oids) {
  for (ObjectId oid : oids) received_.erase(oid);
}

void DeviceEndpoint::ForEachLiveReplicaOid(
    const std::function<void(ObjectId)>& visit) {
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (it->second->get() == nullptr) {
      it = replicas_.erase(it);
    } else {
      visit(it->first);
      ++it;
    }
  }
}

Result<Object*> DeviceEndpoint::Materialize(ObjectId oid) {
  if (Object* replica = FindReplica(oid); replica != nullptr) return replica;
  return Fault(oid);
}

Result<uint64_t> DeviceEndpoint::RefreshValues(ObjectId oid) {
  Object* replica = FindReplica(oid);
  if (replica == nullptr)
    return FailedPreconditionError(
        "replica " + oid.ToString() +
        " is not resident (never replicated, collected, or swapped out)");
  OBISWAP_ASSIGN_OR_RETURN(ReplicationServer::ValueSnapshot snapshot,
                           link_.SnapshotValues(self_, oid));
  for (auto& [field, value] : snapshot.fields) {
    size_t slot = replica->cls().FieldIndex(field);
    if (slot == runtime::ClassInfo::kNpos)
      return DataLossError("snapshot field '" + field +
                           "' unknown to local class " +
                           replica->cls().name());
    // Middleware-level write: value fields only, no mediation needed.
    replica->RawSlotMutable(slot) = std::move(value);
  }
  rt_.heap().RefreshAccounting(replica);
  if (version_sink_) version_sink_(oid, snapshot.version);
  return snapshot.version;
}

Result<Object*> DeviceEndpoint::Fault(ObjectId oid) {
  ++stats_.object_faults;
  OBISWAP_ASSIGN_OR_RETURN(ClusterReply reply,
                           link_.FetchCluster(self_, oid));

  // Re-create the cluster's objects locally. External refs bind to existing
  // replicas or to (possibly fresh) replication proxies.
  auto resolve = [this](const serialization::ExternalRef& ref)
      -> Result<Object*> {
    if (Object* replica = FindReplica(ref.oid); replica != nullptr)
      return replica;
    return ProxyFor(ref.oid, ref.class_name);
  };
  serialization::DeserializeOptions options;
  options.expected_id = static_cast<int64_t>(reply.cluster.value());
  OBISWAP_ASSIGN_OR_RETURN(
      std::vector<Object*> members,
      serialization::DeserializeCluster(rt_, reply.xml, options, resolve));

  LocalScope scope(rt_.heap());
  for (Object* member : members) scope.Add(member);

  for (Object* member : members) {
    replicas_[member->oid()] = rt_.heap().NewWeakRef(member);
    received_.insert(member->oid());
  }
  if (version_sink_) {
    for (const auto& [member_oid, version] : reply.versions) {
      version_sink_(member_oid, version);
    }
  }
  ++stats_.clusters_replicated;
  stats_.objects_replicated += members.size();

  // Announce before proxy replacement so the swapping layer can label the
  // new replicas with swap-clusters first — replacement stores then create
  // swap-cluster-proxies for cross-swap-cluster references.
  if (bus_ != nullptr) {
    context::Event event(context::kEventClusterReplicated);
    event.Set("cluster", static_cast<int64_t>(reply.cluster.value()));
    event.Set("count", static_cast<int64_t>(members.size()));
    bus_->Publish(event);
  }

  // Proxy replacement: re-point every reference held by a replication proxy
  // for one of the new replicas.
  for (Object* member : members) {
    if (Object* proxy = LookupWeak(proxies_, member->oid());
        proxy != nullptr) {
      ReplaceProxy(proxy, member);
      proxies_.erase(member->oid());
    }
  }

  Object* replica = FindReplica(oid);
  if (replica == nullptr)
    return InternalError("fault for oid " + oid.ToString() +
                         " did not deliver the object");
  return replica;
}

void DeviceEndpoint::ReplaceProxy(Object* proxy, Object* real) {
  rt_.heap().ForEachObject([&](Object* holder) {
    if (holder == proxy) return;
    for (size_t i = 0; i < holder->slot_count(); ++i) {
      const Value& slot = holder->RawSlot(i);
      if (!slot.is_ref() || slot.ref() != proxy) continue;
      if (holder->kind() == ObjectKind::kRegular) {
        // Application object: go through the barrier so the store is
        // mediated (swap-cluster-proxies appear here when swapping is on).
        Status status = rt_.SetFieldAt(holder, i, Value::Ref(real));
        OBISWAP_CHECK(status.ok());
      } else {
        // Middleware object (swap-cluster-proxy, replacement...): raw patch.
        holder->RawSlotMutable(i).set_ref(real);
      }
      ++stats_.references_patched;
    }
  });
  for (const auto& [name, target] : rt_.GlobalRefs()) {
    if (target == proxy) {
      Status status = rt_.SetGlobal(name, Value::Ref(real));
      OBISWAP_CHECK(status.ok());
      ++stats_.references_patched;
    }
  }
}

Result<Value> DeviceEndpoint::Invoke(runtime::Runtime& rt, Object* receiver,
                                     std::string_view method,
                                     std::vector<Value>& args) {
  ObjectId oid(
      static_cast<uint64_t>(receiver->RawSlot(kSlotOid).as_int()));
  Object* replica = FindReplica(oid);
  if (replica == nullptr) {
    LocalScope scope(rt.heap());
    scope.Add(receiver);
    OBISWAP_ASSIGN_OR_RETURN(replica, Fault(oid));
  }
  // Forward. Returned raw references get mediated when stored (the write
  // barrier) — transient use needs no proxy.
  return rt.Invoke(replica, method, std::move(args));
}

}  // namespace obiswap::replication
