#include "persist/flash_store.h"

namespace obiswap::persist {

FlashStore::FlashStore(DeviceId device, size_t capacity_bytes,
                       net::SimClock& clock, FlashParams params)
    : device_(device),
      capacity_bytes_(capacity_bytes),
      clock_(clock),
      params_(params) {}

uint64_t FlashStore::AccessCost(size_t bytes, uint64_t per_kib) const {
  return params_.op_latency_us +
         (static_cast<uint64_t>(bytes) * per_kib) / 1024;
}

Status FlashStore::Store(SwapKey key, std::string text) {
  if (auto it = entries_.find(key); it != entries_.end()) {
    if (it->second == text) return OkStatus();  // idempotent re-store
    return AlreadyExistsError("flash key " + key.ToString() +
                              " already stored");
  }
  if (used_bytes_ + text.size() > capacity_bytes_)
    return ResourceExhaustedError("flash full");
  uint64_t cost = AccessCost(text.size(), params_.write_us_per_kib);
  clock_.Advance(cost);
  stats_.busy_us += cost;
  ++stats_.writes;
  stats_.bytes_written += text.size();
  used_bytes_ += text.size();
  entries_.emplace(key, std::move(text));
  return OkStatus();
}

Result<std::string> FlashStore::Fetch(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("flash key " + key.ToString() + " not stored");
  uint64_t cost = AccessCost(it->second.size(), params_.read_us_per_kib);
  clock_.Advance(cost);
  stats_.busy_us += cost;
  ++stats_.reads;
  stats_.bytes_read += it->second.size();
  return it->second;
}

Status FlashStore::Drop(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("flash key " + key.ToString() + " not stored");
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  ++stats_.drops;
  return OkStatus();
}

}  // namespace obiswap::persist
