#include "persist/flash_store.h"

namespace obiswap::persist {

FlashStore::FlashStore(DeviceId device, size_t capacity_bytes,
                       net::SimClock& clock, FlashParams params)
    : device_(device),
      capacity_bytes_(capacity_bytes),
      clock_(clock),
      params_(params) {}

Status FlashStore::set_capacity_bytes(size_t bytes) {
  if (bytes < used_bytes_)
    return InvalidArgumentError(
        "cannot shrink flash capacity to " + std::to_string(bytes) +
        " bytes: " + std::to_string(used_bytes_) + " bytes are stored");
  capacity_bytes_ = bytes;
  return OkStatus();
}

uint64_t FlashStore::AccessCost(size_t bytes, uint64_t per_kib) const {
  return params_.op_latency_us +
         (static_cast<uint64_t>(bytes) * per_kib) / 1024;
}

Status FlashStore::Store(SwapKey key, std::string text) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == text)
    return OkStatus();  // idempotent re-store: no wear, no time
  // Overwrite accounting: capacity is charged by the size *delta* (the old
  // entry's bytes are reclaimed by the same operation), while wear is
  // charged for every byte actually written — flash rewrites the whole new
  // payload even when it shrinks.
  const size_t existing = it != entries_.end() ? it->second.size() : 0;
  if (used_bytes_ - existing + text.size() > capacity_bytes_)
    return ResourceExhaustedError("flash full");
  uint64_t cost = AccessCost(text.size(), params_.write_us_per_kib);
  clock_.Advance(cost);
  stats_.busy_us += cost;
  ++stats_.writes;
  stats_.bytes_written += text.size();
  used_bytes_ = used_bytes_ - existing + text.size();
  if (it != entries_.end()) {
    ++stats_.overwrites;
    it->second = std::move(text);
  } else {
    entries_.emplace(key, std::move(text));
  }
  return OkStatus();
}

Result<std::string> FlashStore::Fetch(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("flash key " + key.ToString() + " not stored");
  uint64_t cost = AccessCost(it->second.size(), params_.read_us_per_kib);
  clock_.Advance(cost);
  stats_.busy_us += cost;
  ++stats_.reads;
  stats_.bytes_read += it->second.size();
  return it->second;
}

Status FlashStore::Drop(SwapKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    return NotFoundError("flash key " + key.ToString() + " not stored");
  used_bytes_ -= it->second.size();
  entries_.erase(it);
  ++stats_.drops;
  return OkStatus();
}

}  // namespace obiswap::persist
