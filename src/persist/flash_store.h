// Local persistent storage (OBIWAN Figure 1's "Persistence" module, and
// the fallback the related work [7] uses: .Net Micro persists unreachable
// data to flash cards).
//
// A FlashStore offers the same dumb store/fetch/drop contract as a remote
// StoreNode but lives on the device itself: no radio, but flash-like
// asymmetric access costs charged to the virtual clock, and a wear counter
// (flash endurance is why the paper prefers shipping data to *other*
// devices when any are nearby).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "common/status.h"
#include "net/sim_clock.h"

namespace obiswap::persist {

struct FlashParams {
  /// CompactFlash-era throughput: writes much slower than reads.
  uint64_t read_us_per_kib = 300;
  uint64_t write_us_per_kib = 1200;
  uint64_t op_latency_us = 500;  ///< per-operation controller overhead
};

class FlashStore {
 public:
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t drops = 0;
    uint64_t overwrites = 0;     ///< writes that replaced an existing key
    uint64_t bytes_written = 0;  ///< wear proxy
    uint64_t bytes_read = 0;
    uint64_t busy_us = 0;
  };

  /// `device` is the owning device's id (swap bookkeeping distinguishes
  /// local from remote placements by it). `clock` is advanced by access
  /// costs.
  FlashStore(DeviceId device, size_t capacity_bytes, net::SimClock& clock,
             FlashParams params = FlashParams());

  DeviceId device() const { return device_; }
  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Repartitions the store at runtime (e.g. a policy action growing the
  /// swap tier's share). Shrinking below the bytes already stored is
  /// rejected with kInvalidArgument — the store never drops data to fit.
  Status set_capacity_bytes(size_t bytes);
  size_t used_bytes() const { return used_bytes_; }
  size_t free_bytes() const { return capacity_bytes_ - used_bytes_; }
  size_t entry_count() const { return entries_.size(); }

  Status Store(SwapKey key, std::string text);
  Result<std::string> Fetch(SwapKey key);
  Status Drop(SwapKey key);
  bool Contains(SwapKey key) const { return entries_.count(key) > 0; }

  const Stats& stats() const { return stats_; }

 private:
  uint64_t AccessCost(size_t bytes, uint64_t per_kib) const;

  DeviceId device_;
  size_t capacity_bytes_;
  size_t used_bytes_ = 0;
  net::SimClock& clock_;
  FlashParams params_;
  std::unordered_map<SwapKey, std::string> entries_;
  Stats stats_;
};

}  // namespace obiswap::persist
