// Heap-compression baseline (related work [2] Chen et al., OOPSLA'03 and
// [3] Chihaia & Gross's software-only model).
//
// Instead of shipping idle data to a nearby device, this baseline
// compresses it *in place*: the serialized graph is LZ77-compressed into a
// managed blob object that stays on the constrained device's heap. Memory
// shrinks by (original - compressed) but never reaches zero — "the
// compressed-memory pool actually reduces the memory available to
// applications" — and every cycle burns CPU, the paper's energy argument
// against compression on mobile devices.
#pragma once

#include <string>

#include "common/status.h"
#include "runtime/runtime.h"

namespace obiswap::baseline {

class CompressionSwapper {
 public:
  struct Stats {
    uint64_t compressions = 0;
    uint64_t decompressions = 0;
    uint64_t original_bytes = 0;    ///< serialized size before codec
    uint64_t compressed_bytes = 0;  ///< blob size kept on the heap
  };

  /// `codec` is one of the compress module's codecs ("lz77" default).
  explicit CompressionSwapper(runtime::Runtime& rt,
                              std::string codec = "lz77");

  /// Compresses the self-contained object graph rooted at global `name`
  /// into an in-heap blob, then drops the graph (the next collection frees
  /// it). Returns the compressed size. The graph must not reference objects
  /// outside itself.
  Result<size_t> CompressGlobal(const std::string& name);

  /// Rebuilds the graph from the blob and restores the global.
  Status DecompressGlobal(const std::string& name);

  bool IsCompressed(const std::string& name) const;

  const Stats& stats() const { return stats_; }

 private:
  static std::string BlobGlobal(const std::string& name) {
    return "__compressed_" + name;
  }

  runtime::Runtime& rt_;
  std::string codec_;
  const runtime::ClassInfo* blob_cls_;
  Stats stats_;
};

}  // namespace obiswap::baseline
