#include "baseline/compression.h"

#include <deque>
#include <unordered_set>

#include "compress/codec.h"
#include "serialization/graph_xml.h"

namespace obiswap::baseline {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using runtime::ValueKind;

namespace {
constexpr const char* kBlobClassName = "baseline.CompressedBlob";
constexpr size_t kSlotData = 0;
constexpr size_t kSlotRootOid = 1;
}  // namespace

CompressionSwapper::CompressionSwapper(runtime::Runtime& rt,
                                       std::string codec)
    : rt_(rt), codec_(std::move(codec)) {
  OBISWAP_CHECK(compress::FindCodec(codec_) != nullptr);
  const ClassInfo* existing = rt_.types().Find(kBlobClassName);
  blob_cls_ = existing != nullptr
                  ? existing
                  : *rt_.types().Register(
                        ClassBuilder(kBlobClassName)
                            .Field("data", ValueKind::kStr)
                            .Field("root_oid", ValueKind::kInt));
}

Result<size_t> CompressionSwapper::CompressGlobal(const std::string& name) {
  OBISWAP_ASSIGN_OR_RETURN(Value root_value, rt_.GetGlobal(name));
  if (!root_value.is_ref() || root_value.ref() == nullptr)
    return InvalidArgumentError("global '" + name + "' is not a reference");
  Object* root = root_value.ref();
  if (root->kind() != ObjectKind::kRegular)
    return InvalidArgumentError("global '" + name +
                                "' is mediated; baseline needs raw graphs");

  // Collect the closure (it must be self-contained).
  std::vector<Object*> members;
  std::unordered_set<const Object*> seen;
  std::deque<Object*> frontier{root};
  seen.insert(root);
  while (!frontier.empty()) {
    Object* obj = frontier.front();
    frontier.pop_front();
    members.push_back(obj);
    for (size_t i = 0; i < obj->slot_count(); ++i) {
      const Value& slot = obj->RawSlot(i);
      if (!slot.is_ref() || slot.ref() == nullptr) continue;
      if (slot.ref()->kind() != ObjectKind::kRegular)
        return InvalidArgumentError(
            "graph references middleware objects; not self-contained");
      if (seen.insert(slot.ref()).second) frontier.push_back(slot.ref());
    }
  }

  auto describe = [](Object*) -> Result<serialization::ExternalRef> {
    return InvalidArgumentError("graph is not self-contained");
  };
  OBISWAP_ASSIGN_OR_RETURN(
      serialization::SerializedCluster doc,
      serialization::SerializeCluster(rt_, 0, members, describe));

  const compress::Codec* codec = compress::FindCodec(codec_);
  OBISWAP_ASSIGN_OR_RETURN(std::string blob_bytes,
                           compress::FrameCompress(*codec, doc.payload));
  stats_.original_bytes += doc.payload.size();
  stats_.compressed_bytes += blob_bytes.size();
  ++stats_.compressions;

  OBISWAP_ASSIGN_OR_RETURN(Object * blob, rt_.TryNewMiddleware(blob_cls_));
  LocalScope scope(rt_.heap());
  scope.Add(blob);
  blob->RawSlotMutable(kSlotData) = Value::Str(std::move(blob_bytes));
  blob->RawSlotMutable(kSlotRootOid) =
      Value::Int(static_cast<int64_t>(root->oid().value()));
  rt_.heap().RefreshAccounting(blob);

  size_t compressed = blob->RawSlot(kSlotData).as_str().size();
  OBISWAP_RETURN_IF_ERROR(rt_.SetGlobal(BlobGlobal(name), Value::Ref(blob)));
  rt_.RemoveGlobal(name);
  return compressed;
}

Status CompressionSwapper::DecompressGlobal(const std::string& name) {
  OBISWAP_ASSIGN_OR_RETURN(Value blob_value, rt_.GetGlobal(BlobGlobal(name)));
  Object* blob = blob_value.ref();
  OBISWAP_ASSIGN_OR_RETURN(
      std::string xml_text,
      compress::FrameDecompress(blob->RawSlot(kSlotData).as_str()));
  ++stats_.decompressions;

  auto resolve = [](const serialization::ExternalRef&) -> Result<Object*> {
    return DataLossError("self-contained graph has external refs");
  };
  serialization::DeserializeOptions options;
  options.expected_id = 0;
  OBISWAP_ASSIGN_OR_RETURN(
      std::vector<Object*> members,
      serialization::DeserializeCluster(rt_, xml_text, options, resolve));

  ObjectId root_oid(
      static_cast<uint64_t>(blob->RawSlot(kSlotRootOid).as_int()));
  Object* root = nullptr;
  for (Object* member : members) {
    if (member->oid() == root_oid) root = member;
  }
  if (root == nullptr) return DataLossError("root object missing from blob");
  OBISWAP_RETURN_IF_ERROR(rt_.SetGlobal(name, Value::Ref(root)));
  rt_.RemoveGlobal(BlobGlobal(name));
  return OkStatus();
}

bool CompressionSwapper::IsCompressed(const std::string& name) const {
  return rt_.HasGlobal(BlobGlobal(name));
}

}  // namespace obiswap::baseline
