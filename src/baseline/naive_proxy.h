// Naive per-object proxy baseline (paper §5, last paragraph; related work
// [1,5,6] Messer/Chen-style offloading with per-object surrogates).
//
// "a naive [solution] would have one proxy per each object and all
// references mediated by them. Common application objects are small. So,
// this could potentially double memory occupation when fully-loaded ...
// would also inevitably impose a higher performance penalty, due to
// indirections. Furthermore, even when all objects were swapped, the
// proxies would still remain."
//
// This manager implements exactly that: every stored reference is mediated
// by a per-object surrogate, objects swap out *individually* (one store
// round-trip per object, as in the migration systems), and surrogates
// survive the swap. It reuses the same Runtime hooks as the real
// SwappingManager so the two are directly comparable.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "net/bridge.h"
#include "runtime/runtime.h"

namespace obiswap::baseline {

/// Surrogates are pinned by the manager itself (it plays the role of the
/// migration systems' modified VM object table): "even when all objects
/// were swapped, the proxies would still remain, which would incur in
/// higher memory overhead."
class NaiveProxyManager final : public runtime::Interceptor,
                                public runtime::StoreMediator,
                                public runtime::RootProvider {
 public:
  struct Stats {
    uint64_t proxies_created = 0;
    uint64_t proxies_reused = 0;
    uint64_t mediated_invocations = 0;
    uint64_t objects_swapped_out = 0;
    uint64_t objects_swapped_in = 0;
    uint64_t store_round_trips = 0;
    uint64_t bytes_swapped_out = 0;
  };

  /// Installs the hooks. Uses the kSwapClusterProxy interception slot (the
  /// baseline replaces the real manager; never install both on one
  /// runtime).
  explicit NaiveProxyManager(runtime::Runtime& rt);
  ~NaiveProxyManager() override;

  NaiveProxyManager(const NaiveProxyManager&) = delete;
  NaiveProxyManager& operator=(const NaiveProxyManager&) = delete;

  void AttachStore(net::StoreClient* client, net::Discovery* discovery) {
    store_ = client;
    discovery_ = discovery;
  }

  /// Swaps out each object individually: one serialized document and one
  /// store round-trip per object; its surrogate remains, marked swapped.
  Status SwapOutObjects(const std::vector<runtime::Object*>& objects);

  // Hooks.
  runtime::Object* MediateStore(runtime::Runtime& rt,
                                runtime::Object* holder,
                                runtime::Object* value) override;
  Result<runtime::Value> Invoke(runtime::Runtime& rt,
                                runtime::Object* receiver,
                                std::string_view method,
                                std::vector<runtime::Value>& args) override;

  /// Surrogate count currently alive (memory-overhead measurements).
  size_t LiveProxyCount() const { return proxies_.size(); }

  // RootProvider: the surrogate table pins every surrogate.
  void EnumerateRoots(
      const std::function<void(runtime::Object*)>& visit) override;

  const Stats& stats() const { return stats_; }

 private:
  Result<runtime::Object*> ProxyFor(runtime::Object* target);
  Result<runtime::Object*> FaultObject(runtime::Object* proxy);

  runtime::Runtime& rt_;
  const runtime::ClassInfo* proxy_cls_;
  net::StoreClient* store_ = nullptr;
  net::Discovery* discovery_ = nullptr;
  /// Strong: surrogates live for the process lifetime, like the migration
  /// systems' object-table entries.
  std::unordered_map<ObjectId, runtime::Object*> proxies_;
  uint64_t next_key_ = 1;
  Stats stats_;
};

}  // namespace obiswap::baseline
