#include "baseline/naive_proxy.h"

#include "serialization/graph_xml.h"

namespace obiswap::baseline {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using runtime::ValueKind;

namespace {
constexpr const char* kSurrogateClassName = "naive.Surrogate";
constexpr size_t kSlotTarget = 0;
constexpr size_t kSlotOid = 1;
constexpr size_t kSlotKey = 2;
constexpr size_t kSlotDevice = 3;
constexpr size_t kSlotClass = 4;

ObjectId SurrogateOid(const Object* surrogate) {
  return ObjectId(static_cast<uint64_t>(surrogate->RawSlot(kSlotOid).as_int()));
}
}  // namespace

NaiveProxyManager::NaiveProxyManager(runtime::Runtime& rt) : rt_(rt) {
  const ClassInfo* existing = rt_.types().Find(kSurrogateClassName);
  if (existing != nullptr) {
    proxy_cls_ = existing;
  } else {
    proxy_cls_ = *rt_.types().Register(
        ClassBuilder(kSurrogateClassName)
            .Kind(ObjectKind::kSwapClusterProxy)
            .Field("target", ValueKind::kRef)
            .Field("oid", ValueKind::kInt)
            .Field("key", ValueKind::kInt)
            .Field("device", ValueKind::kInt)
            .Field("class", ValueKind::kStr));
  }
  rt_.SetInterceptor(ObjectKind::kSwapClusterProxy, this);
  rt_.SetStoreMediator(this);
  rt_.heap().AddRootProvider(this);
}

NaiveProxyManager::~NaiveProxyManager() {
  rt_.SetInterceptor(ObjectKind::kSwapClusterProxy, nullptr);
  rt_.SetStoreMediator(nullptr);
  rt_.heap().RemoveRootProvider(this);
}

void NaiveProxyManager::EnumerateRoots(
    const std::function<void(Object*)>& visit) {
  for (const auto& [oid, proxy] : proxies_) visit(proxy);
}

Result<Object*> NaiveProxyManager::ProxyFor(Object* target) {
  auto it = proxies_.find(target->oid());
  if (it != proxies_.end()) {
    ++stats_.proxies_reused;
    return it->second;
  }
  LocalScope scope(rt_.heap());
  scope.Add(target);
  OBISWAP_ASSIGN_OR_RETURN(Object * proxy, rt_.TryNewMiddleware(proxy_cls_));
  proxy->RawSlotMutable(kSlotTarget) = Value::Ref(target);
  proxy->RawSlotMutable(kSlotOid) =
      Value::Int(static_cast<int64_t>(target->oid().value()));
  proxy->RawSlotMutable(kSlotClass) = Value::Str(target->cls().name());
  proxies_[target->oid()] = proxy;
  ++stats_.proxies_created;
  return proxy;
}

Object* NaiveProxyManager::MediateStore(runtime::Runtime& rt, Object* holder,
                                        Object* value) {
  (void)rt;
  (void)holder;
  if (value == nullptr) return value;
  // "all references mediated": every stored reference to a regular object
  // goes through its surrogate, regardless of locality.
  if (value->kind() != ObjectKind::kRegular) return value;
  Result<Object*> proxy = ProxyFor(value);
  return proxy.ok() ? *proxy : value;
}

Status NaiveProxyManager::SwapOutObjects(
    const std::vector<Object*>& objects) {
  if (store_ == nullptr || discovery_ == nullptr)
    return FailedPreconditionError("no store client attached");
  auto describe = [](Object* external) -> Result<serialization::ExternalRef> {
    if (external->kind() != ObjectKind::kSwapClusterProxy &&
        external->kind() != ObjectKind::kReplicationProxy) {
      return InternalError("unmediated reference in naive baseline");
    }
    serialization::ExternalRef ref;
    ref.oid = external->kind() == ObjectKind::kSwapClusterProxy
                  ? SurrogateOid(external)
                  : ObjectId(static_cast<uint64_t>(
                        external->RawSlot(0).as_int()));
    ref.class_name = external->cls().name();
    return ref;
  };
  for (Object* obj : objects) {
    if (obj->kind() != ObjectKind::kRegular)
      return InvalidArgumentError("can only swap regular objects");
    // Per-object document + per-object store round trip (the migration
    // systems move objects one surrogate at a time).
    OBISWAP_ASSIGN_OR_RETURN(
        serialization::SerializedCluster doc,
        serialization::SerializeCluster(rt_, 0, {obj}, describe));
    std::vector<net::StoreNode*> stores =
        discovery_->NearbyStores(store_->self(), doc.payload.size());
    if (stores.empty()) return UnavailableError("no nearby store");
    SwapKey key((static_cast<uint64_t>(store_->self().value()) << 32) |
                next_key_++);
    OBISWAP_RETURN_IF_ERROR(
        store_->Store(stores.front()->device(), key, doc.payload));
    ++stats_.store_round_trips;
    stats_.bytes_swapped_out += doc.payload.size();

    // The surrogate remains, now marking a swapped object.
    OBISWAP_ASSIGN_OR_RETURN(Object * proxy, ProxyFor(obj));
    proxy->RawSlotMutable(kSlotTarget) = Value::Nil();
    proxy->RawSlotMutable(kSlotKey) =
        Value::Int(static_cast<int64_t>(key.value()));
    proxy->RawSlotMutable(kSlotDevice) =
        Value::Int(static_cast<int64_t>(stores.front()->device().value()));
    ++stats_.objects_swapped_out;
  }
  return OkStatus();
}

Result<Object*> NaiveProxyManager::FaultObject(Object* proxy) {
  if (store_ == nullptr)
    return FailedPreconditionError("no store client attached");
  SwapKey key(static_cast<uint64_t>(proxy->RawSlot(kSlotKey).as_int()));
  DeviceId device(
      static_cast<uint32_t>(proxy->RawSlot(kSlotDevice).as_int()));
  OBISWAP_ASSIGN_OR_RETURN(std::string xml_text, store_->Fetch(device, key));
  ++stats_.store_round_trips;

  auto resolve =
      [this](const serialization::ExternalRef& ref) -> Result<Object*> {
    auto it = proxies_.find(ref.oid);
    if (it != proxies_.end()) return it->second;
    return InternalError("swapped object references unknown surrogate oid " +
                         ref.oid.ToString());
  };
  serialization::DeserializeOptions options;
  options.expected_id = 0;
  OBISWAP_ASSIGN_OR_RETURN(
      std::vector<Object*> members,
      serialization::DeserializeCluster(rt_, xml_text, options, resolve));
  if (members.size() != 1)
    return DataLossError("expected exactly one object per naive document");
  Object* obj = members[0];
  proxy->RawSlotMutable(kSlotTarget) = Value::Ref(obj);
  proxy->RawSlotMutable(kSlotKey) = Value::Int(0);
  (void)store_->Drop(device, key);
  ++stats_.objects_swapped_in;
  return obj;
}

Result<Value> NaiveProxyManager::Invoke(runtime::Runtime& rt,
                                        Object* receiver,
                                        std::string_view method,
                                        std::vector<Value>& args) {
  ++stats_.mediated_invocations;
  Object* target = receiver->RawSlot(kSlotTarget).ref();
  if (receiver->RawSlot(kSlotTarget).is_nil() || target == nullptr) {
    OBISWAP_ASSIGN_OR_RETURN(target, FaultObject(receiver));
  }
  Result<Value> result = rt.Invoke(target, method, std::move(args));
  if (!result.ok()) return result;
  Value value = *std::move(result);
  if (value.is_ref() && value.ref() != nullptr &&
      value.ref()->kind() == ObjectKind::kRegular) {
    // Every reference handed to the application is mediated.
    LocalScope scope(rt.heap());
    scope.Add(value.ref());
    OBISWAP_ASSIGN_OR_RETURN(Object * proxy, ProxyFor(value.ref()));
    value.set_ref(proxy);
  }
  return value;
}

}  // namespace obiswap::baseline
