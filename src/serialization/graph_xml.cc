#include "serialization/graph_xml.h"

#include <unordered_map>

#include "common/checksum.h"
#include "common/string_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::serialization {

using runtime::ClassInfo;
using runtime::Object;
using runtime::Runtime;
using runtime::Value;
using runtime::ValueKind;

namespace {

/// Order-sensitive digest over the semantic content of a cluster document.
/// Serializer and deserializer feed it the same primitive sequence, so the
/// checksum survives re-parsing (unlike a hash of the raw text).
class Digest {
 public:
  void Mix(std::string_view text) {
    hash_ = Fnv1a64(text) * 1099511628211ull ^ (hash_ << 1);
  }
  void Mix(uint64_t value) {
    hash_ ^= value + 0x9E3779B97F4A7C15ull + (hash_ << 6) + (hash_ >> 2);
  }
  uint32_t Finish() const {
    return static_cast<uint32_t>(hash_ ^ (hash_ >> 32));
  }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::string RealToText(double value) {
  // Round-trippable double representation.
  return StrFormat("%.17g", value);
}

}  // namespace

Result<SerializedCluster> SerializeCluster(
    Runtime& rt, uint32_t cluster_attr_id,
    const std::vector<Object*>& members,
    const DescribeExternalFn& describe_external) {
  (void)rt;
  std::unordered_map<const Object*, size_t> member_index;
  member_index.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    auto [it, inserted] = member_index.emplace(members[i], i);
    if (!inserted)
      return InvalidArgumentError("duplicate member in cluster serialization");
  }

  SerializedCluster out;
  std::unordered_map<const Object*, size_t> outbound_index;
  Digest digest;
  digest.Mix(static_cast<uint64_t>(cluster_attr_id));
  digest.Mix(static_cast<uint64_t>(members.size()));

  auto root = xml::Node::Element("swap-cluster");
  root->SetIntAttr("id", cluster_attr_id);
  root->SetIntAttr("count", static_cast<int64_t>(members.size()));

  for (Object* member : members) {
    xml::Node* object_el = root->AddElement("object");
    object_el->SetIntAttr("oid", static_cast<int64_t>(member->oid().value()));
    object_el->SetAttr("class", member->cls().name());
    if (member->cluster().valid())
      object_el->SetIntAttr("cluster", member->cluster().value());
    digest.Mix(member->oid().value());
    digest.Mix(member->cls().name());

    const auto& fields = member->cls().fields();
    for (size_t i = 0; i < fields.size(); ++i) {
      const Value& slot = member->RawSlot(i);
      xml::Node* field_el = object_el->AddElement("f");
      field_el->SetAttr("n", fields[i].name);
      field_el->SetAttr("t", ValueKindName(slot.kind()));
      digest.Mix(fields[i].name);
      digest.Mix(static_cast<uint64_t>(slot.kind()));
      switch (slot.kind()) {
        case ValueKind::kNil:
          break;
        case ValueKind::kInt:
          field_el->AddText(std::to_string(slot.as_int()));
          digest.Mix(static_cast<uint64_t>(slot.as_int()));
          break;
        case ValueKind::kReal: {
          std::string text = RealToText(slot.as_real());
          field_el->AddText(text);
          digest.Mix(text);
          break;
        }
        case ValueKind::kStr:
          field_el->AddText(slot.as_str());
          digest.Mix(slot.as_str());
          break;
        case ValueKind::kRef: {
          Object* target = slot.ref();
          auto member_it = member_index.find(target);
          if (member_it != member_index.end()) {
            field_el->SetIntAttr("local",
                                 static_cast<int64_t>(member_it->second));
            digest.Mix(member_it->second);
            break;
          }
          // External: describe it (or fail — e.g. a raw cross-swap-cluster
          // reference violates the mediation invariant).
          size_t index;
          auto outbound_it = outbound_index.find(target);
          ExternalRef ref;
          if (outbound_it != outbound_index.end()) {
            index = outbound_it->second;
            OBISWAP_ASSIGN_OR_RETURN(ref, describe_external(target));
            ref.index = index;
          } else {
            OBISWAP_ASSIGN_OR_RETURN(ref, describe_external(target));
            index = out.outbound.size();
            ref.index = index;
            outbound_index.emplace(target, index);
            out.outbound.push_back(target);
          }
          field_el->SetIntAttr("out", static_cast<int64_t>(index));
          field_el->SetIntAttr("oid", static_cast<int64_t>(ref.oid.value()));
          field_el->SetAttr("class", ref.class_name);
          if (ref.cluster.valid())
            field_el->SetIntAttr("cluster", ref.cluster.value());
          digest.Mix(index);
          digest.Mix(ref.oid.value());
          break;
        }
      }
    }
  }

  root->SetIntAttr("checksum", digest.Finish());
  out.payload = xml::Write(*root);
  out.object_count = members.size();
  return out;
}

Result<std::vector<Object*>> DeserializeCluster(
    Runtime& rt, const std::string& xml_text,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external) {
  OBISWAP_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  const xml::Node& root = *doc;
  if (root.name() != "swap-cluster")
    return DataLossError("expected <swap-cluster> root, got <" + root.name() +
                         ">");
  OBISWAP_ASSIGN_OR_RETURN(int64_t id_attr, root.GetIntAttr("id"));
  if (options.expected_id >= 0 && id_attr != options.expected_id)
    return DataLossError(StrFormat("cluster id mismatch: got %lld want %lld",
                                   (long long)id_attr,
                                   (long long)options.expected_id));
  OBISWAP_ASSIGN_OR_RETURN(int64_t count_attr, root.GetIntAttr("count"));

  std::vector<const xml::Node*> object_els = root.FindChildren("object");
  if (static_cast<int64_t>(object_els.size()) != count_attr)
    return DataLossError("object count mismatch");

  Digest digest;
  digest.Mix(static_cast<uint64_t>(id_attr));
  digest.Mix(static_cast<uint64_t>(object_els.size()));

  // Pass 1: create all member objects (so local refs resolve in pass 2).
  runtime::LocalScope scope(rt.heap());
  std::vector<Object*> members;
  members.reserve(object_els.size());
  for (const xml::Node* object_el : object_els) {
    OBISWAP_ASSIGN_OR_RETURN(int64_t oid_attr, object_el->GetIntAttr("oid"));
    OBISWAP_ASSIGN_OR_RETURN(std::string class_name,
                             object_el->GetAttr("class"));
    const ClassInfo* cls = rt.types().Find(class_name);
    if (cls == nullptr)
      return DataLossError("unknown class '" + class_name + "' in document");
    OBISWAP_ASSIGN_OR_RETURN(
        Object * obj,
        rt.TryNewWithId(cls, ObjectId(static_cast<uint64_t>(oid_attr))));
    scope.Add(obj);
    OBISWAP_ASSIGN_OR_RETURN(int64_t cluster_attr,
                             object_el->GetIntAttrOr("cluster", -1));
    if (cluster_attr >= 0)
      obj->set_cluster(ClusterId(static_cast<uint32_t>(cluster_attr)));
    if (options.assign_swap_cluster.valid())
      obj->set_swap_cluster(options.assign_swap_cluster);
    members.push_back(obj);
  }

  // Pass 2: fill slots.
  for (size_t m = 0; m < members.size(); ++m) {
    Object* obj = members[m];
    const xml::Node* object_el = object_els[m];
    digest.Mix(obj->oid().value());
    digest.Mix(obj->cls().name());
    // Every class field must appear exactly once. Without this, a document
    // missing a <f> element silently left that slot nil and a duplicated
    // element was last-write-wins — both only ever surfaced when
    // verify_checksum happened to be on. Structural damage is rejected
    // unconditionally instead.
    std::vector<bool> slot_seen(obj->cls().fields().size(), false);
    for (const xml::Node* field_el : object_el->FindChildren("f")) {
      OBISWAP_ASSIGN_OR_RETURN(std::string field_name,
                               field_el->GetAttr("n"));
      size_t slot = obj->cls().FieldIndex(field_name);
      if (slot == ClassInfo::kNpos)
        return DataLossError("class " + obj->cls().name() +
                             " has no field '" + field_name + "'");
      if (slot_seen[slot])
        return DataLossError("duplicate field '" + field_name +
                             "' for class " + obj->cls().name());
      slot_seen[slot] = true;
      OBISWAP_ASSIGN_OR_RETURN(std::string kind_name, field_el->GetAttr("t"));
      digest.Mix(field_name);
      std::string text = field_el->InnerText();
      Value value;
      if (kind_name == "nil") {
        digest.Mix(static_cast<uint64_t>(ValueKind::kNil));
        value = Value::Nil();
      } else if (kind_name == "int") {
        digest.Mix(static_cast<uint64_t>(ValueKind::kInt));
        OBISWAP_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(text));
        value = Value::Int(parsed);
        digest.Mix(static_cast<uint64_t>(parsed));
      } else if (kind_name == "real") {
        digest.Mix(static_cast<uint64_t>(ValueKind::kReal));
        OBISWAP_ASSIGN_OR_RETURN(double parsed, ParseDouble(text));
        value = Value::Real(parsed);
        digest.Mix(RealToText(parsed));
      } else if (kind_name == "str") {
        digest.Mix(static_cast<uint64_t>(ValueKind::kStr));
        digest.Mix(text);
        value = Value::Str(std::move(text));
      } else if (kind_name == "ref") {
        digest.Mix(static_cast<uint64_t>(ValueKind::kRef));
        auto local_attr = field_el->GetIntAttrOr("local", -1);
        if (!local_attr.ok()) return local_attr.status();
        if (*local_attr >= 0) {
          if (static_cast<size_t>(*local_attr) >= members.size())
            return DataLossError("local ref index out of range");
          value = Value::Ref(members[static_cast<size_t>(*local_attr)]);
          digest.Mix(static_cast<uint64_t>(*local_attr));
        } else {
          ExternalRef ref;
          OBISWAP_ASSIGN_OR_RETURN(int64_t out_attr,
                                   field_el->GetIntAttr("out"));
          OBISWAP_ASSIGN_OR_RETURN(int64_t oid_attr,
                                   field_el->GetIntAttr("oid"));
          ref.index = static_cast<size_t>(out_attr);
          ref.oid = ObjectId(static_cast<uint64_t>(oid_attr));
          OBISWAP_ASSIGN_OR_RETURN(ref.class_name,
                                   field_el->GetAttr("class"));
          OBISWAP_ASSIGN_OR_RETURN(int64_t cluster_attr,
                                   field_el->GetIntAttrOr("cluster", -1));
          if (cluster_attr >= 0)
            ref.cluster = ClusterId(static_cast<uint32_t>(cluster_attr));
          OBISWAP_ASSIGN_OR_RETURN(Object * target, resolve_external(ref));
          value = Value::Ref(target);
          digest.Mix(ref.index);
          digest.Mix(ref.oid.value());
        }
      } else {
        return DataLossError("unknown field kind '" + kind_name + "'");
      }
      // Middleware-level write: swap-in must restore exactly what was
      // captured, without re-mediation.
      obj->RawSlotMutable(slot) = std::move(value);
    }
    for (size_t i = 0; i < slot_seen.size(); ++i) {
      if (!slot_seen[i])
        return DataLossError("missing field '" + obj->cls().fields()[i].name +
                             "' for class " + obj->cls().name());
    }
    rt.heap().RefreshAccounting(obj);
  }

  if (options.verify_checksum) {
    OBISWAP_ASSIGN_OR_RETURN(int64_t expected, root.GetIntAttr("checksum"));
    if (static_cast<uint32_t>(expected) != digest.Finish())
      return DataLossError(
          "cluster checksum mismatch: store-side corruption?");
  }
  return members;
}

}  // namespace obiswap::serialization
