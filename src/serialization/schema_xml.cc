#include "serialization/schema_xml.h"

#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::serialization {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::ValueKind;

namespace {
Result<ValueKind> KindFromName(const std::string& name) {
  if (name == "any" || name.empty()) return ValueKind::kNil;
  if (name == "nil") return ValueKind::kNil;
  if (name == "ref") return ValueKind::kRef;
  if (name == "int") return ValueKind::kInt;
  if (name == "real") return ValueKind::kReal;
  if (name == "str") return ValueKind::kStr;
  return InvalidArgumentError("unknown field type '" + name + "'");
}
}  // namespace

Result<size_t> LoadClassesXml(runtime::Runtime& rt,
                              const std::string& xml_text,
                              const NativeMethods* methods) {
  OBISWAP_ASSIGN_OR_RETURN(auto doc, xml::Parse(xml_text));
  if (doc->name() != "classes")
    return InvalidArgumentError("expected <classes> root");
  size_t registered = 0;
  for (const xml::Node* class_el : doc->FindChildren("class")) {
    OBISWAP_ASSIGN_OR_RETURN(std::string name, class_el->GetAttr("name"));
    OBISWAP_ASSIGN_OR_RETURN(int64_t payload,
                             class_el->GetIntAttrOr("payload", 0));
    if (payload < 0) return InvalidArgumentError("negative payload");
    ClassBuilder builder(name);
    builder.PayloadBytes(static_cast<size_t>(payload));
    for (const xml::Node* field_el : class_el->FindChildren("field")) {
      OBISWAP_ASSIGN_OR_RETURN(std::string field_name,
                               field_el->GetAttr("name"));
      const std::string* type = field_el->FindAttr("type");
      OBISWAP_ASSIGN_OR_RETURN(
          ValueKind kind, KindFromName(type != nullptr ? *type : "any"));
      builder.Field(std::move(field_name), kind);
    }
    for (const xml::Node* method_el : class_el->FindChildren("method")) {
      OBISWAP_ASSIGN_OR_RETURN(std::string method_name,
                               method_el->GetAttr("name"));
      std::string key = name + "." + method_name;
      if (methods == nullptr || methods->count(key) == 0)
        return NotFoundError("no native implementation for method '" + key +
                             "'");
      builder.Method(std::move(method_name), methods->at(key));
    }
    OBISWAP_ASSIGN_OR_RETURN(const ClassInfo* info,
                             rt.types().Register(builder));
    (void)info;
    ++registered;
  }
  return registered;
}

std::string DumpClassesXml(const runtime::TypeRegistry& types) {
  auto root = xml::Node::Element("classes");
  for (uint32_t id = 0; id < types.size(); ++id) {
    const ClassInfo* info = types.Find(ClassId(id));
    if (info == nullptr || info->kind() != runtime::ObjectKind::kRegular)
      continue;
    xml::Node* class_el = root->AddElement("class");
    class_el->SetAttr("name", info->name());
    if (info->payload_bytes() > 0)
      class_el->SetIntAttr("payload",
                           static_cast<int64_t>(info->payload_bytes()));
    for (const runtime::FieldInfo& field : info->fields()) {
      xml::Node* field_el = class_el->AddElement("field");
      field_el->SetAttr("name", field.name);
      field_el->SetAttr("type", field.kind == ValueKind::kNil
                                    ? "any"
                                    : ValueKindName(field.kind));
    }
    for (const runtime::MethodInfo& method : info->methods()) {
      class_el->AddElement("method")->SetAttr("name", method.name);
    }
  }
  xml::WriteOptions options;
  options.pretty = true;
  return xml::Write(*root, options);
}

}  // namespace obiswap::serialization
