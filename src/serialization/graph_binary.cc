#include "serialization/graph_binary.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "common/checksum.h"
#include "common/varint.h"

namespace obiswap::serialization {

using runtime::ClassInfo;
using runtime::Object;
using runtime::Runtime;
using runtime::Value;
using runtime::ValueKind;

namespace {

constexpr char kDocMagic[4] = {'O', 'S', 'W', 'B'};
constexpr char kDeltaMagic[4] = {'O', 'S', 'W', 'D'};
constexpr uint64_t kDocVersion = 1;
constexpr uint64_t kDeltaVersion = 1;

// Field value tags on the wire.
constexpr uint8_t kTagNil = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagReal = 2;
constexpr uint8_t kTagStr = 3;
constexpr uint8_t kTagLocal = 4;
constexpr uint8_t kTagExt = 5;

/// Same order-sensitive mixing as the XML digest (graph_xml.cc), but over
/// the binary document's semantics: reals are mixed by *bit pattern* (so
/// NaN payloads and signed zeros are covered exactly), and field names are
/// not mixed (they are not on the wire — the class schema supplies them).
/// Computable from a parsed document alone, which is what lets delta apply
/// verify the merged result without a runtime.
class Digest {
 public:
  void Mix(std::string_view text) {
    hash_ = Fnv1a64(text) * 1099511628211ull ^ (hash_ << 1);
  }
  void Mix(uint64_t value) {
    hash_ ^= value + 0x9E3779B97F4A7C15ull + (hash_ << 6) + (hash_ >> 2);
  }
  uint32_t Finish() const {
    return static_cast<uint32_t>(hash_ ^ (hash_ >> 32));
  }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Identity of an external target as carried on the wire (index excluded —
/// indices shift between documents, identity does not).
struct ExtId {
  uint64_t oid = 0;
  std::string class_name;
  uint64_t cluster_plus1 = 0;  // 0 = no replication-cluster label

  bool operator==(const ExtId& other) const {
    return oid == other.oid && class_name == other.class_name &&
           cluster_plus1 == other.cluster_plus1;
  }
};

struct FieldRec {
  uint8_t tag = kTagNil;
  int64_t int_value = 0;
  uint64_t real_bits = 0;
  std::string str_value;
  uint64_t index = 0;  // member index (local) or outbound index (ext)
  ExtId ext;

  bool operator==(const FieldRec& other) const {
    if (tag != other.tag) return false;
    switch (tag) {
      case kTagNil:
        return true;
      case kTagInt:
        return int_value == other.int_value;
      case kTagReal:
        return real_bits == other.real_bits;
      case kTagStr:
        return str_value == other.str_value;
      case kTagLocal:
        return index == other.index;
      case kTagExt:
        return index == other.index && ext == other.ext;
      default:
        return false;
    }
  }
};

struct MemberRec {
  uint64_t oid = 0;
  std::string class_name;
  uint64_t cluster_plus1 = 0;
  std::vector<FieldRec> fields;
};

/// Fully parsed document — the model Diff and Apply operate on.
struct Doc {
  uint64_t cluster_id = 0;
  std::vector<MemberRec> members;
  uint64_t outbound_count = 0;
  uint32_t embedded_digest = 0;
};

void PutString(std::string* out, std::string_view text) {
  PutVarint64(out, text.size());
  out->append(text);
}

Result<std::string> GetString(std::string_view* in) {
  OBISWAP_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(in));
  if (len > in->size()) return DataLossError("binary doc: truncated string");
  std::string text(in->substr(0, static_cast<size_t>(len)));
  in->remove_prefix(static_cast<size_t>(len));
  return text;
}

void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

Result<uint64_t> GetFixed64(std::string_view* in) {
  if (in->size() < 8) return DataLossError("binary doc: truncated real");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<uint64_t>(static_cast<unsigned char>((*in)[i]))
             << (8 * i);
  in->remove_prefix(8);
  return value;
}

void EncodeField(std::string* out, const FieldRec& field) {
  out->push_back(static_cast<char>(field.tag));
  switch (field.tag) {
    case kTagNil:
      break;
    case kTagInt:
      PutVarint64(out, ZigZagEncode(field.int_value));
      break;
    case kTagReal:
      PutFixed64(out, field.real_bits);
      break;
    case kTagStr:
      PutString(out, field.str_value);
      break;
    case kTagLocal:
      PutVarint64(out, field.index);
      break;
    case kTagExt:
      PutVarint64(out, field.index);
      PutVarint64(out, field.ext.oid);
      PutString(out, field.ext.class_name);
      PutVarint64(out, field.ext.cluster_plus1);
      break;
  }
}

Result<FieldRec> DecodeField(std::string_view* in) {
  if (in->empty()) return DataLossError("binary doc: truncated field");
  FieldRec field;
  field.tag = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  switch (field.tag) {
    case kTagNil:
      break;
    case kTagInt: {
      OBISWAP_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(in));
      field.int_value = ZigZagDecode(raw);
      break;
    }
    case kTagReal: {
      OBISWAP_ASSIGN_OR_RETURN(field.real_bits, GetFixed64(in));
      break;
    }
    case kTagStr: {
      OBISWAP_ASSIGN_OR_RETURN(field.str_value, GetString(in));
      break;
    }
    case kTagLocal: {
      OBISWAP_ASSIGN_OR_RETURN(field.index, GetVarint64(in));
      break;
    }
    case kTagExt: {
      OBISWAP_ASSIGN_OR_RETURN(field.index, GetVarint64(in));
      OBISWAP_ASSIGN_OR_RETURN(field.ext.oid, GetVarint64(in));
      OBISWAP_ASSIGN_OR_RETURN(field.ext.class_name, GetString(in));
      OBISWAP_ASSIGN_OR_RETURN(field.ext.cluster_plus1, GetVarint64(in));
      break;
    }
    default:
      return DataLossError("binary doc: unknown field tag " +
                           std::to_string(field.tag));
  }
  return field;
}

void MixField(Digest& digest, const FieldRec& field) {
  digest.Mix(static_cast<uint64_t>(field.tag));
  switch (field.tag) {
    case kTagNil:
      break;
    case kTagInt:
      digest.Mix(ZigZagEncode(field.int_value));
      break;
    case kTagReal:
      digest.Mix(field.real_bits);
      break;
    case kTagStr:
      digest.Mix(field.str_value);
      break;
    case kTagLocal:
      digest.Mix(field.index);
      break;
    case kTagExt:
      digest.Mix(field.index);
      digest.Mix(field.ext.oid);
      break;
  }
}

uint32_t ComputeDocDigest(const Doc& doc) {
  Digest digest;
  digest.Mix(doc.cluster_id);
  digest.Mix(static_cast<uint64_t>(doc.members.size()));
  for (const MemberRec& member : doc.members) {
    digest.Mix(member.oid);
    digest.Mix(member.class_name);
    digest.Mix(member.cluster_plus1);
    digest.Mix(static_cast<uint64_t>(member.fields.size()));
    for (const FieldRec& field : member.fields) MixField(digest, field);
  }
  digest.Mix(doc.outbound_count);
  return digest.Finish();
}

/// Canonical encoding: same doc → same bytes, which is what makes
/// Apply(base, Diff(base, fresh)) byte-identical to fresh.
std::string EncodeDoc(const Doc& doc) {
  std::string out(kDocMagic, sizeof(kDocMagic));
  PutVarint64(&out, kDocVersion);
  PutVarint64(&out, doc.cluster_id);
  PutVarint64(&out, doc.members.size());
  for (const MemberRec& member : doc.members) {
    PutVarint64(&out, member.oid);
    PutString(&out, member.class_name);
    PutVarint64(&out, member.cluster_plus1);
    PutVarint64(&out, member.fields.size());
    for (const FieldRec& field : member.fields) EncodeField(&out, field);
  }
  PutVarint64(&out, doc.outbound_count);
  PutVarint64(&out, ComputeDocDigest(doc));
  return out;
}

/// Parses and structurally validates an OSWB document: local indices in
/// range, external indices in range with one consistent identity per index
/// and no index unused (the encoder allocates them densely).
Result<Doc> ParseDoc(std::string_view payload) {
  if (payload.size() < 4 ||
      std::memcmp(payload.data(), kDocMagic, 4) != 0)
    return DataLossError("binary doc: bad magic");
  std::string_view rest = payload.substr(4);
  OBISWAP_ASSIGN_OR_RETURN(uint64_t version, GetVarint64(&rest));
  if (version != kDocVersion)
    return DataLossError("binary doc: unsupported version " +
                         std::to_string(version));
  Doc doc;
  OBISWAP_ASSIGN_OR_RETURN(doc.cluster_id, GetVarint64(&rest));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t member_count, GetVarint64(&rest));
  doc.members.reserve(
      static_cast<size_t>(std::min<uint64_t>(member_count, 4096)));
  for (uint64_t m = 0; m < member_count; ++m) {
    MemberRec member;
    OBISWAP_ASSIGN_OR_RETURN(member.oid, GetVarint64(&rest));
    OBISWAP_ASSIGN_OR_RETURN(member.class_name, GetString(&rest));
    OBISWAP_ASSIGN_OR_RETURN(member.cluster_plus1, GetVarint64(&rest));
    OBISWAP_ASSIGN_OR_RETURN(uint64_t field_count, GetVarint64(&rest));
    member.fields.reserve(
        static_cast<size_t>(std::min<uint64_t>(field_count, 4096)));
    for (uint64_t f = 0; f < field_count; ++f) {
      OBISWAP_ASSIGN_OR_RETURN(FieldRec field, DecodeField(&rest));
      member.fields.push_back(std::move(field));
    }
    doc.members.push_back(std::move(member));
  }
  OBISWAP_ASSIGN_OR_RETURN(doc.outbound_count, GetVarint64(&rest));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t embedded, GetVarint64(&rest));
  if (embedded > UINT32_MAX) return DataLossError("binary doc: bad digest");
  doc.embedded_digest = static_cast<uint32_t>(embedded);
  if (!rest.empty()) return DataLossError("binary doc: trailing bytes");

  std::unordered_map<uint64_t, ExtId> ext_by_index;
  for (const MemberRec& member : doc.members) {
    for (const FieldRec& field : member.fields) {
      if (field.tag == kTagLocal) {
        if (field.index >= doc.members.size())
          return DataLossError("binary doc: local ref index out of range");
      } else if (field.tag == kTagExt) {
        if (field.index >= doc.outbound_count)
          return DataLossError("binary doc: external index out of range");
        auto [it, inserted] = ext_by_index.emplace(field.index, field.ext);
        if (!inserted && !(it->second == field.ext))
          return DataLossError(
              "binary doc: conflicting identities for external index " +
              std::to_string(field.index));
      }
    }
  }
  if (ext_by_index.size() != doc.outbound_count)
    return DataLossError("binary doc: unused external index");
  return doc;
}

Result<Doc> ParseAndVerifyDoc(std::string_view payload) {
  OBISWAP_ASSIGN_OR_RETURN(Doc doc, ParseDoc(payload));
  if (ComputeDocDigest(doc) != doc.embedded_digest)
    return DataLossError("binary doc: digest mismatch");
  return doc;
}

uint64_t ClusterPlus1(ClusterId cluster) {
  return cluster.valid() ? static_cast<uint64_t>(cluster.value()) + 1 : 0;
}

}  // namespace

bool IsBinaryClusterPayload(std::string_view payload) {
  return payload.size() >= 4 &&
         std::memcmp(payload.data(), kDocMagic, 4) == 0;
}

bool IsClusterDeltaPayload(std::string_view payload) {
  return payload.size() >= 4 &&
         std::memcmp(payload.data(), kDeltaMagic, 4) == 0;
}

Result<SerializedCluster> SerializeClusterBinary(
    Runtime& rt, uint32_t cluster_attr_id,
    const std::vector<Object*>& members,
    const DescribeExternalFn& describe_external) {
  (void)rt;
  std::unordered_map<const Object*, size_t> member_index;
  member_index.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    auto [it, inserted] = member_index.emplace(members[i], i);
    if (!inserted)
      return InvalidArgumentError("duplicate member in cluster serialization");
  }

  SerializedCluster out;
  std::unordered_map<const Object*, size_t> outbound_index;
  Doc doc;
  doc.cluster_id = cluster_attr_id;
  doc.members.reserve(members.size());

  for (Object* member : members) {
    MemberRec record;
    record.oid = member->oid().value();
    record.class_name = member->cls().name();
    record.cluster_plus1 = ClusterPlus1(member->cluster());
    const auto& fields = member->cls().fields();
    record.fields.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const Value& slot = member->RawSlot(i);
      FieldRec field;
      switch (slot.kind()) {
        case ValueKind::kNil:
          field.tag = kTagNil;
          break;
        case ValueKind::kInt:
          field.tag = kTagInt;
          field.int_value = slot.as_int();
          break;
        case ValueKind::kReal: {
          field.tag = kTagReal;
          double real = slot.as_real();
          std::memcpy(&field.real_bits, &real, sizeof(real));
          break;
        }
        case ValueKind::kStr:
          field.tag = kTagStr;
          field.str_value = slot.as_str();
          break;
        case ValueKind::kRef: {
          Object* target = slot.ref();
          auto member_it = member_index.find(target);
          if (member_it != member_index.end()) {
            field.tag = kTagLocal;
            field.index = member_it->second;
            break;
          }
          // Same protocol as the XML serializer: describe every external
          // occurrence (so mediation-invariant violations surface), dedupe
          // the outbound slot by target.
          size_t index;
          auto outbound_it = outbound_index.find(target);
          ExternalRef ref;
          if (outbound_it != outbound_index.end()) {
            index = outbound_it->second;
            OBISWAP_ASSIGN_OR_RETURN(ref, describe_external(target));
          } else {
            OBISWAP_ASSIGN_OR_RETURN(ref, describe_external(target));
            index = out.outbound.size();
            outbound_index.emplace(target, index);
            out.outbound.push_back(target);
          }
          field.tag = kTagExt;
          field.index = index;
          field.ext.oid = ref.oid.value();
          field.ext.class_name = ref.class_name;
          field.ext.cluster_plus1 = ClusterPlus1(ref.cluster);
          break;
        }
      }
      record.fields.push_back(std::move(field));
    }
    doc.members.push_back(std::move(record));
  }
  doc.outbound_count = out.outbound.size();
  out.payload = EncodeDoc(doc);
  out.object_count = members.size();
  return out;
}

namespace {

Result<std::vector<Object*>> MaterializeDoc(
    Runtime& rt, const Doc& doc, const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external) {
  if (options.expected_id >= 0 &&
      doc.cluster_id != static_cast<uint64_t>(options.expected_id))
    return DataLossError("cluster id mismatch: got " +
                         std::to_string(doc.cluster_id) + " want " +
                         std::to_string(options.expected_id));

  // Pass 1: create all member objects (so local refs resolve in pass 2).
  runtime::LocalScope scope(rt.heap());
  std::vector<Object*> members;
  members.reserve(doc.members.size());
  for (const MemberRec& record : doc.members) {
    const ClassInfo* cls = rt.types().Find(record.class_name);
    if (cls == nullptr)
      return DataLossError("unknown class '" + record.class_name +
                           "' in document");
    if (cls->fields().size() != record.fields.size())
      return DataLossError(
          "field count mismatch for class " + record.class_name + ": doc has " +
          std::to_string(record.fields.size()) + ", class has " +
          std::to_string(cls->fields().size()));
    OBISWAP_ASSIGN_OR_RETURN(Object * obj,
                             rt.TryNewWithId(cls, ObjectId(record.oid)));
    scope.Add(obj);
    if (record.cluster_plus1 != 0)
      obj->set_cluster(
          ClusterId(static_cast<uint32_t>(record.cluster_plus1 - 1)));
    if (options.assign_swap_cluster.valid())
      obj->set_swap_cluster(options.assign_swap_cluster);
    members.push_back(obj);
  }

  // Pass 2: fill slots (middleware-level writes, no re-mediation).
  for (size_t m = 0; m < doc.members.size(); ++m) {
    Object* obj = members[m];
    const MemberRec& record = doc.members[m];
    for (size_t f = 0; f < record.fields.size(); ++f) {
      const FieldRec& field = record.fields[f];
      Value value;
      switch (field.tag) {
        case kTagNil:
          value = Value::Nil();
          break;
        case kTagInt:
          value = Value::Int(field.int_value);
          break;
        case kTagReal: {
          double real;
          std::memcpy(&real, &field.real_bits, sizeof(real));
          value = Value::Real(real);
          break;
        }
        case kTagStr:
          value = Value::Str(field.str_value);
          break;
        case kTagLocal:
          value = Value::Ref(members[static_cast<size_t>(field.index)]);
          break;
        case kTagExt: {
          ExternalRef ref;
          ref.index = static_cast<size_t>(field.index);
          ref.oid = ObjectId(field.ext.oid);
          ref.class_name = field.ext.class_name;
          if (field.ext.cluster_plus1 != 0)
            ref.cluster =
                ClusterId(static_cast<uint32_t>(field.ext.cluster_plus1 - 1));
          OBISWAP_ASSIGN_OR_RETURN(Object * target, resolve_external(ref));
          value = Value::Ref(target);
          break;
        }
      }
      obj->RawSlotMutable(f) = std::move(value);
    }
    rt.heap().RefreshAccounting(obj);
  }
  return members;
}

}  // namespace

Result<std::vector<Object*>> DeserializeClusterBinary(
    Runtime& rt, const std::string& payload,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external) {
  OBISWAP_ASSIGN_OR_RETURN(Doc doc, ParseDoc(payload));
  if (options.verify_checksum && ComputeDocDigest(doc) != doc.embedded_digest)
    return DataLossError("cluster digest mismatch: store-side corruption?");
  return MaterializeDoc(rt, doc, options, resolve_external);
}

Result<std::vector<Object*>> DeserializeClusterAny(
    Runtime& rt, const std::string& payload,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external) {
  if (IsBinaryClusterPayload(payload))
    return DeserializeClusterBinary(rt, payload, options, resolve_external);
  if (!payload.empty() && payload[0] == '<')
    return DeserializeCluster(rt, payload, options, resolve_external);
  return DataLossError("unrecognized cluster payload format");
}

// ---------------------------------------------------------------------------
// Delta
// ---------------------------------------------------------------------------
//
// "OSWD" layout:
//   magic, varint version, varint cluster_id,
//   varint base_digest, varint target_digest,
//   varint member_count, varint op_count, per op:
//     u8 kind (0 carry-run / 1 added),
//     carry-run: varint base_start, varint run_len — copy that many
//       consecutive base members (an unchanged membership in base order is
//       one op, so the identity section does not scale with cluster size)
//     added: varint oid, class name, varint cluster+1, varint field_count
//   varint outbound_count, per outbound index: varint target oid
//   varint patch_count, per patch:
//     varint member_index (new order), varint field_index, encoded field
//
// A carried member copies the base member's oid, class, cluster label and
// every unpatched field; its local/external references are remapped by
// target oid (see header comment). An added member must have every field
// patched.

Result<std::string> DiffClusterPayloads(std::string_view base,
                                        std::string_view fresh) {
  if (!IsBinaryClusterPayload(base) || !IsBinaryClusterPayload(fresh))
    return InvalidArgumentError("delta diff requires two binary documents");
  OBISWAP_ASSIGN_OR_RETURN(Doc base_doc, ParseAndVerifyDoc(base));
  OBISWAP_ASSIGN_OR_RETURN(Doc fresh_doc, ParseAndVerifyDoc(fresh));
  if (base_doc.cluster_id != fresh_doc.cluster_id)
    return InvalidArgumentError("delta diff across different clusters");

  std::unordered_map<uint64_t, size_t> base_by_oid;
  base_by_oid.reserve(base_doc.members.size());
  for (size_t i = 0; i < base_doc.members.size(); ++i)
    base_by_oid.emplace(base_doc.members[i].oid, i);

  std::string out(kDeltaMagic, sizeof(kDeltaMagic));
  PutVarint64(&out, kDeltaVersion);
  PutVarint64(&out, fresh_doc.cluster_id);
  PutVarint64(&out, base_doc.embedded_digest);
  PutVarint64(&out, fresh_doc.embedded_digest);

  // Member identity section: runs of consecutive carried base members
  // interleaved with added-member records, in fresh-document order. The
  // common delta — same membership, same order — is a single carry-run op.
  std::vector<bool> carried(fresh_doc.members.size(), false);
  std::vector<size_t> base_index_of(fresh_doc.members.size(), 0);
  for (size_t i = 0; i < fresh_doc.members.size(); ++i) {
    const MemberRec& member = fresh_doc.members[i];
    auto it = base_by_oid.find(member.oid);
    if (it != base_by_oid.end() &&
        base_doc.members[it->second].class_name == member.class_name &&
        base_doc.members[it->second].cluster_plus1 ==
            member.cluster_plus1) {
      carried[i] = true;
      base_index_of[i] = it->second;
    }
  }
  PutVarint64(&out, fresh_doc.members.size());
  std::string member_ops;
  uint64_t op_count = 0;
  for (size_t i = 0; i < fresh_doc.members.size(); ++op_count) {
    if (carried[i]) {
      size_t run = 1;
      while (i + run < fresh_doc.members.size() && carried[i + run] &&
             base_index_of[i + run] == base_index_of[i] + run) {
        ++run;
      }
      member_ops.push_back(0);
      PutVarint64(&member_ops, base_index_of[i]);
      PutVarint64(&member_ops, run);
      i += run;
    } else {
      const MemberRec& member = fresh_doc.members[i];
      member_ops.push_back(1);
      PutVarint64(&member_ops, member.oid);
      PutString(&member_ops, member.class_name);
      PutVarint64(&member_ops, member.cluster_plus1);
      PutVarint64(&member_ops, member.fields.size());
      ++i;
    }
  }
  PutVarint64(&out, op_count);
  out += member_ops;

  // New outbound table: target oid per index (identity beyond the oid rides
  // on the patched fields; carried fields keep their base identity).
  std::vector<uint64_t> outbound_oids(
      static_cast<size_t>(fresh_doc.outbound_count), 0);
  for (const MemberRec& member : fresh_doc.members) {
    for (const FieldRec& field : member.fields) {
      if (field.tag == kTagExt)
        outbound_oids[static_cast<size_t>(field.index)] = field.ext.oid;
    }
  }
  PutVarint64(&out, fresh_doc.outbound_count);
  for (uint64_t oid : outbound_oids) PutVarint64(&out, oid);

  // Patches: any field whose value cannot be predicted from the base.
  std::string patches;
  uint64_t patch_count = 0;
  for (size_t i = 0; i < fresh_doc.members.size(); ++i) {
    const MemberRec& member = fresh_doc.members[i];
    const MemberRec* base_member =
        carried[i] ? &base_doc.members[base_by_oid.at(member.oid)] : nullptr;
    for (size_t f = 0; f < member.fields.size(); ++f) {
      const FieldRec& field = member.fields[f];
      bool predicted = false;
      if (base_member != nullptr && f < base_member->fields.size()) {
        const FieldRec& base_field = base_member->fields[f];
        if (field.tag == base_field.tag) {
          switch (field.tag) {
            case kTagLocal: {
              // Same target object (by oid) — apply remaps the index.
              uint64_t base_target =
                  base_doc.members[static_cast<size_t>(base_field.index)].oid;
              uint64_t fresh_target =
                  fresh_doc.members[static_cast<size_t>(field.index)].oid;
              predicted = base_target == fresh_target;
              break;
            }
            case kTagExt:
              // Same target identity — apply remaps the index via the
              // outbound table.
              predicted = base_field.ext == field.ext;
              break;
            default:
              predicted = base_field == field;
          }
        }
      }
      if (predicted) continue;
      PutVarint64(&patches, i);
      PutVarint64(&patches, f);
      EncodeField(&patches, field);
      ++patch_count;
    }
  }
  PutVarint64(&out, patch_count);
  out += patches;
  return out;
}

Result<std::string> ApplyClusterDelta(std::string_view base,
                                      std::string_view delta) {
  if (!IsClusterDeltaPayload(delta))
    return DataLossError("delta apply: not a delta payload");
  OBISWAP_ASSIGN_OR_RETURN(Doc base_doc, ParseAndVerifyDoc(base));

  std::string_view rest = delta.substr(4);
  OBISWAP_ASSIGN_OR_RETURN(uint64_t version, GetVarint64(&rest));
  if (version != kDeltaVersion)
    return DataLossError("delta apply: unsupported version " +
                         std::to_string(version));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t cluster_id, GetVarint64(&rest));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t base_digest, GetVarint64(&rest));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t target_digest, GetVarint64(&rest));
  if (cluster_id != base_doc.cluster_id)
    return DataLossError("delta apply: cluster id mismatch");
  if (base_digest != base_doc.embedded_digest)
    return DataLossError(
        "delta apply: delta was made against a different base payload");

  // Member section → new member skeletons (carry-runs copy the base).
  Doc merged;
  merged.cluster_id = cluster_id;
  OBISWAP_ASSIGN_OR_RETURN(uint64_t member_count, GetVarint64(&rest));
  merged.members.reserve(
      static_cast<size_t>(std::min<uint64_t>(member_count, 4096)));
  std::vector<bool> member_carried;
  member_carried.reserve(merged.members.capacity());
  std::unordered_map<uint64_t, size_t> new_by_oid;
  new_by_oid.reserve(
      static_cast<size_t>(std::min<uint64_t>(member_count, 4096)));
  OBISWAP_ASSIGN_OR_RETURN(uint64_t op_count, GetVarint64(&rest));
  for (uint64_t op = 0; op < op_count; ++op) {
    if (rest.empty())
      return DataLossError("delta apply: truncated member op");
    uint8_t kind = static_cast<uint8_t>(rest[0]);
    rest.remove_prefix(1);
    if (kind == 0) {
      OBISWAP_ASSIGN_OR_RETURN(uint64_t start, GetVarint64(&rest));
      OBISWAP_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(&rest));
      if (len == 0 || start > base_doc.members.size() ||
          len > base_doc.members.size() - start)
        return DataLossError("delta apply: carry run out of range");
      for (uint64_t k = 0; k < len; ++k) {
        const MemberRec& from =
            base_doc.members[static_cast<size_t>(start + k)];
        if (!new_by_oid.emplace(from.oid, merged.members.size()).second)
          return DataLossError("delta apply: duplicate member oid");
        merged.members.push_back(from);
        member_carried.push_back(true);
      }
    } else if (kind == 1) {
      MemberRec member;
      OBISWAP_ASSIGN_OR_RETURN(member.oid, GetVarint64(&rest));
      OBISWAP_ASSIGN_OR_RETURN(member.class_name, GetString(&rest));
      OBISWAP_ASSIGN_OR_RETURN(member.cluster_plus1, GetVarint64(&rest));
      OBISWAP_ASSIGN_OR_RETURN(uint64_t field_count, GetVarint64(&rest));
      member.fields.resize(
          static_cast<size_t>(std::min<uint64_t>(field_count, 4096)));
      if (member.fields.size() != field_count)
        return DataLossError("delta apply: absurd field count");
      if (!new_by_oid.emplace(member.oid, merged.members.size()).second)
        return DataLossError("delta apply: duplicate member oid");
      merged.members.push_back(std::move(member));
      member_carried.push_back(false);
    } else {
      return DataLossError("delta apply: bad member op");
    }
    if (merged.members.size() > member_count)
      return DataLossError("delta apply: member ops exceed member count");
  }
  if (merged.members.size() != member_count)
    return DataLossError("delta apply: member ops disagree with count");

  // Outbound table → oid-to-new-index map for external remapping.
  OBISWAP_ASSIGN_OR_RETURN(merged.outbound_count, GetVarint64(&rest));
  std::unordered_map<uint64_t, uint64_t> ext_index_by_oid;
  ext_index_by_oid.reserve(static_cast<size_t>(
      std::min<uint64_t>(merged.outbound_count, 4096)));
  for (uint64_t i = 0; i < merged.outbound_count; ++i) {
    OBISWAP_ASSIGN_OR_RETURN(uint64_t oid, GetVarint64(&rest));
    if (!ext_index_by_oid.emplace(oid, i).second)
      return DataLossError("delta apply: duplicate outbound oid");
  }

  // Patches overwrite predicted values.
  std::vector<std::vector<bool>> patched(merged.members.size());
  for (size_t i = 0; i < merged.members.size(); ++i)
    patched[i].assign(merged.members[i].fields.size(), false);
  OBISWAP_ASSIGN_OR_RETURN(uint64_t patch_count, GetVarint64(&rest));
  for (uint64_t p = 0; p < patch_count; ++p) {
    OBISWAP_ASSIGN_OR_RETURN(uint64_t member_index, GetVarint64(&rest));
    OBISWAP_ASSIGN_OR_RETURN(uint64_t field_index, GetVarint64(&rest));
    if (member_index >= merged.members.size() ||
        field_index >= merged.members[member_index].fields.size())
      return DataLossError("delta apply: patch index out of range");
    OBISWAP_ASSIGN_OR_RETURN(FieldRec field, DecodeField(&rest));
    merged.members[static_cast<size_t>(member_index)]
        .fields[static_cast<size_t>(field_index)] = std::move(field);
    patched[static_cast<size_t>(member_index)]
           [static_cast<size_t>(field_index)] = true;
  }
  if (!rest.empty()) return DataLossError("delta apply: trailing bytes");

  // Remap the unpatched fields of carried members, and require that every
  // field of an added member was patched.
  for (size_t i = 0; i < merged.members.size(); ++i) {
    MemberRec& member = merged.members[i];
    for (size_t f = 0; f < member.fields.size(); ++f) {
      if (patched[i][f]) continue;
      if (!member_carried[i])
        return DataLossError("delta apply: added member missing field patch");
      FieldRec& field = member.fields[f];
      if (field.tag == kTagLocal) {
        uint64_t target_oid =
            base_doc.members[static_cast<size_t>(field.index)].oid;
        auto it = new_by_oid.find(target_oid);
        if (it == new_by_oid.end())
          return DataLossError(
              "delta apply: unpatched local ref to removed member");
        field.index = it->second;
      } else if (field.tag == kTagExt) {
        auto it = ext_index_by_oid.find(field.ext.oid);
        if (it == ext_index_by_oid.end())
          return DataLossError(
              "delta apply: unpatched external ref to removed target");
        field.index = it->second;
      }
    }
  }

  std::string encoded = EncodeDoc(merged);
  // EncodeDoc embeds ComputeDocDigest(merged); the target digest pins the
  // merged result to exactly what the fresh serialize produced.
  if (ComputeDocDigest(merged) != target_digest)
    return DataLossError("delta apply: merged document digest mismatch");
  return encoded;
}

}  // namespace obiswap::serialization
