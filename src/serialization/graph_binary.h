// Object-graph ⇄ binary serialization, and binary cluster deltas.
//
// The XML format (graph_xml.h) is what the paper describes, but on a
// ~700 Kbps link its tag overhead dominates small objects. This module is
// the compact alternative behind SwappingManager's wire-format flag:
//
//   "OSWB" full document — varint/field-tag encoding of exactly the same
//   semantic content as the XML document (same member order, same external
//   describe/resolve protocol, same embedded semantic digest idea), at a
//   fraction of the bytes. Field *names* never hit the wire: values are
//   encoded in class field order and the class schema supplies the names,
//   which also makes the missing/duplicate-field damage the XML parser must
//   check for structurally impossible here. Schema skew is caught by the
//   class name plus a strict field-count check at decode; the digest covers
//   every value (reals by bit pattern) and is recomputable from the parsed
//   document alone, which is what lets delta apply verify a merged document
//   without a runtime.
//
//   "OSWD" delta document — the difference between two OSWB documents for
//   the same cluster: the full new member identity list (a carried member
//   costs ~2 bytes, an added one its class name), the full new outbound
//   identity table, and one patch per field whose value cannot be predicted
//   from the base. Apply(base, Diff(base, fresh)) reproduces `fresh`
//   byte-for-byte (the encoder is canonical), verified end-to-end by the
//   base and target digests embedded in the delta.
//
// Prediction rules (shared by Diff and Apply, so they can never disagree):
// a carried member's field is copied from the base unless patched; local
// references are compared and remapped *by target oid* (member indices
// shift when membership changes), external references by target oid against
// the delta's new outbound table. Anything unpredictable — changed scalars,
// retargeted refs, refs to removed members — is patched explicitly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "serialization/graph_xml.h"

namespace obiswap::serialization {

/// True if `payload` is an "OSWB" binary cluster document.
bool IsBinaryClusterPayload(std::string_view payload);

/// True if `payload` is an "OSWD" binary cluster delta.
bool IsClusterDeltaPayload(std::string_view payload);

/// Serializes `members` as one binary cluster document. Same contract as
/// SerializeCluster: each distinct external target appears once in
/// `outbound`, and `describe_external` failing aborts serialization.
Result<SerializedCluster> SerializeClusterBinary(
    runtime::Runtime& rt, uint32_t cluster_attr_id,
    const std::vector<runtime::Object*>& members,
    const DescribeExternalFn& describe_external);

/// Re-creates the objects of a binary cluster document inside `rt`. Same
/// contract as DeserializeCluster (graph_xml.h).
Result<std::vector<runtime::Object*>> DeserializeClusterBinary(
    runtime::Runtime& rt, const std::string& payload,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external);

/// Dispatches on the payload's leading bytes: '<' → XML document, "OSWB" →
/// binary document. Lets swap-in handle either format transparently (e.g.
/// after the wire format was switched while clusters were swapped out).
Result<std::vector<runtime::Object*>> DeserializeClusterAny(
    runtime::Runtime& rt, const std::string& payload,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external);

/// Computes the "OSWD" delta that transforms the OSWB document `base` into
/// the OSWB document `fresh` (same cluster id required). The delta is
/// usually far smaller than `fresh` when few fields changed, but is NOT
/// guaranteed smaller — callers should fall back to shipping `fresh` when
/// it is not. kInvalidArgument if either payload is not OSWB or the cluster
/// ids differ.
Result<std::string> DiffClusterPayloads(std::string_view base,
                                        std::string_view fresh);

/// Reconstructs the fresh OSWB document from `base` and a delta produced by
/// DiffClusterPayloads. Verifies the delta was made against this exact base
/// (base digest) and that the merged result matches the encoder's digest
/// (target digest); kDataLoss on any mismatch.
Result<std::string> ApplyClusterDelta(std::string_view base,
                                      std::string_view delta);

}  // namespace obiswap::serialization
