// Class schemas as XML documents.
//
// OBIWAN ships application classes to devices (Figure 1's "Assembly /
// Class Files" feeding the Extended Class Loader). Our runtime's classes
// are metadata, so the portable equivalent of a class file is an XML
// schema: field layouts and payload sizes travel as text; method bodies
// bind on arrival from a registry of native implementations (the stand-in
// for executable code the device already has).
//
//   <classes>
//     <class name="Node" payload="64">
//       <field name="next" type="ref"/>
//       <field name="value" type="int"/>
//       <method name="next"/>
//     </class>
//   </classes>
#pragma once

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "runtime/runtime.h"

namespace obiswap::serialization {

/// Method implementations available on the device, keyed "Class.method".
using NativeMethods =
    std::unordered_map<std::string, runtime::MethodFn>;

/// Registers every class in the document with `rt`'s TypeRegistry. Each
/// declared <method> must resolve in `methods` ("Class.method" key);
/// classes already registered are rejected (kAlreadyExists). Returns the
/// number of classes registered.
Result<size_t> LoadClassesXml(runtime::Runtime& rt,
                              const std::string& xml_text,
                              const NativeMethods* methods = nullptr);

/// Exports the registry's regular classes (fields, payloads and method
/// names; middleware proxy classes are skipped) as a schema document that
/// LoadClassesXml on another device accepts.
std::string DumpClassesXml(const runtime::TypeRegistry& types);

}  // namespace obiswap::serialization
