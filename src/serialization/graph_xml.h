// Object-graph ⇄ XML serialization.
//
// This is the format that leaves the device: swapped-out swap-clusters are
// "serialized to XML and sent to a nearby device" (§3), and replication
// ships clusters from the master as XML through the web-service bridge
// (§2, Communication Services). One format serves both:
//
//   <swap-cluster id="2" count="3" checksum="...">
//     <object oid="..." class="Node" cluster="7">
//       <f n="next" t="ref" local="1"/>                  intra-cluster ref
//       <f n="prev" t="ref" out="0" oid="..."
//          class="Node" cluster="6"/>                    external ref
//       <f n="value" t="int">42</f>
//       <f n="name" t="str">bytes...</f>
//       <f n="w" t="real">1.5</f>
//       <f n="gone" t="nil"/>
//     </object>
//     ...
//   </swap-cluster>
//
// External references never name raw cross-swap-cluster objects — the
// paper's invariant says those are always mediated — so the serializer asks
// the caller to *describe* each external target (the swap layer describes
// its outbound swap-cluster-proxies; replication describes remote objects),
// and the deserializer asks the caller to *resolve* each description.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/runtime.h"

namespace obiswap::serialization {

/// Description of a reference leaving the serialized object set.
struct ExternalRef {
  size_t index = 0;         ///< position in the outbound list
  ObjectId oid;             ///< identity of the *ultimate* target
  std::string class_name;   ///< class of the ultimate target
  ClusterId cluster;        ///< replication cluster of the target (if known)
};

struct SerializedCluster {
  /// The serialized payload bytes — XML text from SerializeCluster, or the
  /// binary "OSWB" document from SerializeClusterBinary (graph_binary.h).
  std::string payload;
  std::vector<runtime::Object*> outbound; ///< external objects, by out index
  size_t object_count = 0;
};

/// Serializer callback: maps a non-member referenced object to an
/// ExternalRef (index/oid/class/cluster). Returning an error aborts
/// serialization — the swap layer uses this to enforce the "no raw
/// cross-swap-cluster references" invariant.
using DescribeExternalFn =
    std::function<Result<ExternalRef>(runtime::Object*)>;

/// Deserializer callback: produces the object to store for an external ref.
using ResolveExternalFn =
    std::function<Result<runtime::Object*>(const ExternalRef&)>;

/// Serializes `members` as one cluster document with the given id attribute.
/// Each distinct external target appears once in `outbound`.
Result<SerializedCluster> SerializeCluster(
    runtime::Runtime& rt, uint32_t cluster_attr_id,
    const std::vector<runtime::Object*>& members,
    const DescribeExternalFn& describe_external);

struct DeserializeOptions {
  /// If >= 0, the document's id attribute must equal this.
  int64_t expected_id = -1;
  /// Swap-cluster to label re-created objects with (invalid = keep none).
  SwapClusterId assign_swap_cluster;
  /// Verify the embedded checksum (on by default; off for tests that
  /// hand-author documents).
  bool verify_checksum = true;
};

/// Re-creates the objects of a cluster document inside `rt`. Objects keep
/// their serialized ObjectIds and replication-cluster labels. All slot
/// writes are middleware-level (no store mediation): external refs are
/// stored exactly as resolved.
Result<std::vector<runtime::Object*>> DeserializeCluster(
    runtime::Runtime& rt, const std::string& xml_text,
    const DeserializeOptions& options,
    const ResolveExternalFn& resolve_external);

}  // namespace obiswap::serialization
